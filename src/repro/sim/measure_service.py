"""Batched measurement service behind :class:`MeasurementPolicy` (§3.6 protocol).

Every search strategy bottoms out in "measure this mutated schedule on the
(simulated) GPU".  The service layer decouples *how* those measurements are
issued from the search loop:

* ``inline`` — the historical behavior: one synchronous
  :meth:`~repro.sim.gpu.GPUSimulator.measure` call per candidate;
* ``threaded`` — fan independent candidates out over a thread pool, so a
  batch of single-move candidates (greedy's inner loop, a population of
  individuals) measures concurrently;
* ``process`` — fan candidates out over a *process* pool, sidestepping the
  GIL for the cycle-accurate timing loop (which is pure Python and therefore
  does not parallelize on threads); the workload ships to each worker process
  once via the pool initializer, individual submissions only pickle the
  candidate schedule;
* memoization — an orthogonal wrapper that dedups repeated schedules by a
  content digest of the instruction sequence.  Greedy and evolutionary search
  re-measure identical schedules constantly (the committing step, reverted
  swaps, shared prefixes), so the wrapper trades a dictionary lookup for a
  full timing simulation.  The memo table is private per service by default;
  a :class:`repro.pool.shared_memo.SharedMemoTable` can be plugged in so
  several sessions (e.g. the workers of a ``SessionPool``) share one table,
  with entries namespaced by a workload *scope* key.

A service instance is bound to one workload (kernel launch geometry, input
tensors, measurement protocol) and measures *candidate schedules* of that
workload — exactly the shape of the assembly game's reward query.  All
backends are deterministic for a fixed workload, so ``threaded`` and
``process`` return bit-identical timings to ``inline``, and the
per-``(seed, schedule)`` noise streams of :meth:`GPUSimulator.measure` make
memoization semantics-preserving even under synthetic measurement noise.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator, KernelTiming, MeasurementConfig
from repro.sim.launch import GridConfig


@dataclass
class MeasurementStats:
    """Counters shared by a backend stack (wrapper and wrapped see one object)."""

    #: Candidate measurements requested through the service.
    submitted: int = 0
    #: Raw simulator measurements actually issued.
    measured: int = 0
    #: Requests answered from the memoization table instead of the simulator.
    memo_hits: int = 0
    #: Candidates rejected by the static schedule verifier before measurement
    #: (counted by the searches, not the service itself).
    pruned: int = 0

    def count_pruned(self, n: int = 1) -> None:
        """Record ``n`` candidates statically pruned ahead of measurement."""
        self.pruned += n

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "measured": self.measured,
            "memo_hits": self.memo_hits,
            "pruned": self.pruned,
        }


@runtime_checkable
class MeasurementBackend(Protocol):
    """How candidate schedules of one workload get measured."""

    stats: MeasurementStats

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        """Queue one candidate; the future resolves to its timing."""
        ...  # pragma: no cover - protocol

    def measure_batch(self, candidates: Sequence[SassKernel]) -> list[KernelTiming]:
        """Measure a batch of candidates, results in input order."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release any workers; the service must not be used afterwards."""
        ...  # pragma: no cover - protocol


class _WorkloadMeasurer:
    """Shared base: one workload's launch geometry plus measurement counters."""

    def __init__(
        self,
        simulator: GPUSimulator,
        grid: GridConfig,
        tensors: dict,
        param_order: list[str],
        scalars: dict | None = None,
        measurement: MeasurementConfig | None = None,
        *,
        checkpoint=None,
        progress=None,
    ):
        self.simulator = simulator
        self.grid = grid
        self.tensors = tensors
        self.param_order = param_order
        self.scalars = scalars
        self.measurement = measurement or MeasurementConfig()
        self.stats = MeasurementStats()
        #: Cooperative cancellation checkpoint, run before every candidate
        #: submission and batch; raising from it aborts the search between
        #: measurements (see :class:`repro.errors.JobCancelled`).
        self.checkpoint = checkpoint
        #: ``progress(submitted)`` callback, run after every submission with
        #: the cumulative submission count (memo hits included by wrappers).
        self.progress = progress
        self._lock = threading.Lock()
        # The workload's tensors are bound into a launch context once per
        # measuring thread (one total for ``inline``) and reused across every
        # candidate: timing simulation restores the simulated memory snapshot
        # instead of re-uploading all inputs per measurement.  Launches are
        # thread-local because a launch's memory is mutated during a run.
        self._thread_launches = threading.local()

    def _workload_launch(self):
        launch = getattr(self._thread_launches, "launch", None)
        if launch is None:
            launch = self.simulator.build_launch(
                self.grid, self.tensors, self.param_order, self.scalars
            )
            self._thread_launches.launch = launch
        return launch

    def _measure(self, candidate: SassKernel) -> KernelTiming:
        with self._lock:
            self.stats.measured += 1
        return self.simulator.measure_with_launch(
            candidate, self._workload_launch(), measurement=self.measurement
        )

    def _tick(self) -> None:
        """Per-submission hooks: cancellation checkpoint, then progress."""
        if self.checkpoint is not None:
            self.checkpoint()
        with self._lock:
            self.stats.submitted += 1
            submitted = self.stats.submitted
        if self.progress is not None:
            self.progress(submitted)

    def measure_batch(self, candidates: Sequence[SassKernel]) -> list[KernelTiming]:
        if self.checkpoint is not None:
            self.checkpoint()
        futures = [self.submit(candidate) for candidate in candidates]
        return [future.result() for future in futures]

    def close(self) -> None:
        pass


class InlineMeasurementBackend(_WorkloadMeasurer):
    """Synchronous measurement, one simulator call per candidate (the default)."""

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        self._tick()
        future: Future[KernelTiming] = Future()
        try:
            future.set_result(self._measure(candidate))
        except BaseException as exc:  # noqa: BLE001 - future carries the error
            future.set_exception(exc)
        return future


class ThreadedMeasurementBackend(_WorkloadMeasurer):
    """Thread-pool fan-out: independent candidates measure concurrently.

    Each worker thread binds its own reusable launch context (thread-local),
    so concurrent calls only share the (immutable) architecture config and the
    read-only input tensors.
    """

    def __init__(self, *args, max_workers: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_workers = int(max_workers or min(8, os.cpu_count() or 1))
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="measure"
        )

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        self._tick()
        return self._pool.submit(self._measure, candidate)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


#: Workload bound to each process-pool worker by the pool initializer, so a
#: submission only ships the candidate schedule, not the input tensors.
_PROCESS_WORKLOAD: tuple | None = None
#: The worker's reusable launch, bound lazily from the workload on the first
#: measurement and reused (memory restored) for every later candidate.
_PROCESS_LAUNCH = None


def _process_worker_init(workload: tuple) -> None:
    global _PROCESS_WORKLOAD, _PROCESS_LAUNCH
    _PROCESS_WORKLOAD = workload
    _PROCESS_LAUNCH = None


def _process_measure(candidate: SassKernel) -> KernelTiming:
    global _PROCESS_LAUNCH
    simulator, grid, tensors, param_order, scalars, measurement = _PROCESS_WORKLOAD
    if _PROCESS_LAUNCH is None:
        _PROCESS_LAUNCH = simulator.build_launch(grid, tensors, param_order, scalars)
    return simulator.measure_with_launch(
        candidate, _PROCESS_LAUNCH, measurement=measurement
    )


def _resolve_mp_context(method: str | None):
    """A multiprocessing context: the requested method, else a safe default.

    ``fork`` is preferred where available because the worker processes inherit
    the imported package instead of re-importing it on every pool start — but
    only while the parent is single-threaded: forking a multithreaded process
    (e.g. a ``SessionPool`` running shards on worker threads) can clone locks
    in a held state and deadlock the child.  With threads live we fall back to
    ``forkserver`` (workers fork from a clean single-threaded server, at the
    cost of re-importing the package when the workload unpickles); callers who
    know better can pin the method via ``MeasurementPolicy.mp_context``.
    """
    if method is not None:
        return multiprocessing.get_context(method)
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context()


class ProcessMeasurementBackend(_WorkloadMeasurer):
    """Process-pool fan-out: parallel timing simulation without the GIL.

    The timing loop is pure Python, so ``threaded`` only overlaps what little
    the interpreter releases; worker processes actually run candidates in
    parallel on multi-core hosts.  The simulation is deterministic, so the
    timings are bit-identical to ``inline`` for a fixed measurement seed.

    ``stats.measured`` is counted on submission (worker processes cannot
    update the parent's counters); a submission that errors still counts as
    an issued measurement.
    """

    def __init__(
        self, *args, max_workers: int | None = None, mp_context: str | None = None, **kwargs
    ):
        super().__init__(*args, **kwargs)
        self.max_workers = int(max_workers or min(8, os.cpu_count() or 1))
        workload = (
            self.simulator,
            self.grid,
            self.tensors,
            self.param_order,
            self.scalars,
            self.measurement,
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=_resolve_mp_context(mp_context),
            initializer=_process_worker_init,
            initargs=(workload,),
        )

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        self._tick()
        with self._lock:
            self.stats.measured += 1
        return self._pool.submit(_process_measure, candidate)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class MemoizedMeasurementBackend:
    """Wrapper that dedups repeated schedules by their content digest.

    The first submission of a schedule goes to the wrapped backend; repeats
    share the same future (and therefore the exact same timing object).  The
    wrapped backend's :class:`MeasurementStats` is shared, so ``measured``
    counts raw simulator work and ``memo_hits`` counts deduped requests.

    The table is bounded (``max_entries``, FIFO eviction): a long search over
    mostly unique schedules — e.g. a PPO run with ``memoize=True`` — must not
    retain a timing object per schedule ever measured.  An evicted schedule
    simply re-measures on its next submission.

    With ``table`` set (any object with the ``get(key, owner=...)`` /
    ``put(key, future, owner=...)`` shape of
    :class:`repro.pool.shared_memo.SharedMemoTable`), the memo lives *outside*
    the service and is shared across sessions: a schedule measured by one pool
    worker is a hit for every sibling measuring the same workload.  Keys are
    then prefixed with ``scope`` (the workload identity, so unrelated
    workloads never alias) and lookups carry ``owner`` so the table can
    account cross-worker hits.  Two workers racing on the same unmeasured
    schedule may both issue a raw measurement; the table keeps the first
    future and the race costs one redundant (deterministic) simulation.
    """

    def __init__(
        self,
        inner: MeasurementBackend,
        max_entries: int = 4096,
        *,
        table=None,
        scope: str = "",
        owner: str = "",
    ):
        self.inner = inner
        self.stats = inner.stats
        self.max_entries = int(max_entries)
        self.table = table
        self.scope = scope
        self.owner = owner
        # Memo hits never reach the inner backend, so the wrapper runs the
        # same per-submission hooks itself: a cancelled job must stop even
        # when every remaining candidate would be answered from the table.
        self.checkpoint = getattr(inner, "checkpoint", None)
        self.progress = getattr(inner, "progress", None)
        self._futures: dict[str, Future[KernelTiming]] = {}
        self._lock = threading.Lock()

    def _key(self, candidate: SassKernel) -> str:
        digest = candidate.content_digest()
        return f"{self.scope}|{digest}" if self.scope else digest

    def _tick_hit(self) -> None:
        with self._lock:
            self.stats.submitted += 1
            self.stats.memo_hits += 1
            submitted = self.stats.submitted
        if self.progress is not None:
            self.progress(submitted)

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        if self.checkpoint is not None:
            self.checkpoint()
        key = self._key(candidate)
        if self.table is not None:
            cached = self.table.get(key, owner=self.owner)
            if cached is not None:
                self._tick_hit()
                return cached
            future = self.inner.submit(candidate)
            return self.table.put(key, future, owner=self.owner)
        with self._lock:
            cached = self._futures.get(key)
        if cached is not None:
            self._tick_hit()
            return cached
        future = self.inner.submit(candidate)
        with self._lock:
            while len(self._futures) >= self.max_entries:
                self._futures.pop(next(iter(self._futures)))
            self._futures[key] = future
        return future

    def measure_batch(self, candidates: Sequence[SassKernel]) -> list[KernelTiming]:
        futures = [self.submit(candidate) for candidate in candidates]
        return [future.result() for future in futures]

    def close(self) -> None:
        self.inner.close()


#: Registered backend constructors, keyed by :attr:`MeasurementPolicy.backend` name.
_MEASUREMENT_BACKENDS = {
    "inline": InlineMeasurementBackend,
    "threaded": ThreadedMeasurementBackend,
    "process": ProcessMeasurementBackend,
}


def available_measurement_backends() -> tuple[str, ...]:
    return tuple(sorted(_MEASUREMENT_BACKENDS))


def workload_memo_scope(
    gpu_name: str,
    kernel_name: str,
    shapes: dict,
    config: dict,
    measurement: MeasurementConfig | None = None,
    input_seed: int = 0,
) -> str:
    """Scope key namespacing one workload's entries in a shared memo table.

    Two sessions may share a memoized timing only when it would be
    bit-identical for both, so the scope covers everything the measurement
    depends on besides the candidate schedule itself: the GPU target, the
    workload and its shapes/config (they determine the input tensors together
    with ``input_seed``) and the measurement protocol.
    """
    measurement = measurement or MeasurementConfig()
    canonical = repr(
        (
            str(gpu_name),
            str(kernel_name),
            sorted((str(key), str(value)) for key, value in shapes.items()),
            sorted((str(key), str(value)) for key, value in config.items()),
            measurement.warmup_iterations,
            measurement.measure_iterations,
            measurement.noise_std,
            measurement.seed,
            int(input_seed),
        )
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def create_measurement_service(
    simulator: GPUSimulator,
    grid: GridConfig,
    tensors: dict,
    param_order: list[str],
    scalars: dict | None = None,
    measurement: MeasurementConfig | None = None,
    *,
    backend: str = "inline",
    max_workers: int | None = None,
    mp_context: str | None = None,
    memoize: bool = False,
    shared_memo=None,
    memo_scope: str = "",
    memo_owner: str = "",
    checkpoint=None,
    progress=None,
) -> MeasurementBackend:
    """Build the measurement backend stack for one workload.

    ``backend`` selects the execution style (``"inline"``, ``"threaded"`` or
    ``"process"``); ``memoize`` wraps it in schedule-digest deduplication.
    Passing ``shared_memo`` (a cross-session table; see
    :class:`~repro.pool.shared_memo.SharedMemoTable`) implies memoization and
    requires ``memo_scope`` to namespace this workload's entries.
    ``checkpoint`` installs a cooperative cancellation hook run between
    candidate submissions/batches (raise from it to abort the search);
    ``progress`` streams cumulative submission counts — both ride along on
    :class:`~repro.api.config.MeasurementPolicy` and survive memo wrapping.
    """
    try:
        backend_cls = _MEASUREMENT_BACKENDS[backend]
    except KeyError as exc:
        raise ValueError(
            f"unknown measurement backend {backend!r}; "
            f"available: {list(available_measurement_backends())}"
        ) from exc
    kwargs: dict = {"checkpoint": checkpoint, "progress": progress}
    if backend_cls is ThreadedMeasurementBackend:
        kwargs["max_workers"] = max_workers
    elif backend_cls is ProcessMeasurementBackend:
        kwargs["max_workers"] = max_workers
        kwargs["mp_context"] = mp_context
    service: MeasurementBackend = backend_cls(
        simulator, grid, tensors, param_order, scalars, measurement, **kwargs
    )
    if shared_memo is not None:
        if not memo_scope:
            raise ValueError("shared_memo requires a memo_scope identifying the workload")
        service = MemoizedMeasurementBackend(
            service, table=shared_memo, scope=memo_scope, owner=memo_owner
        )
    elif memoize:
        service = MemoizedMeasurementBackend(service)
    return service
