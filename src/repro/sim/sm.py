"""Streaming-multiprocessor model: warp scheduling, scoreboards and timing.

Two drivers share the :class:`repro.sim.executor.WarpExecutor` semantics:

* :class:`FunctionalRunner` executes every warp of a thread block in lockstep
  phases between block barriers.  It is used to produce kernel *outputs*
  (probabilistic testing, examples) and is still timing-aware within a warp,
  so schedules with broken stall counts produce wrong values.
* :class:`TimingSimulator` models one SM executing one thread block: four
  sub-partitions each issue at most one instruction per cycle from an
  eligible warp, variable-latency results are tracked through scoreboard
  barriers, load/store and tensor-core units have limited issue throughput,
  and the operand-reuse cache is invalidated whenever the scheduler switches
  warps.  Its cycle count is the reward signal of the assembly game.

The timing loop is *event-driven*: each warp's next-candidate issue cycle is
cached and recomputed only when one of its inputs changes (an issue in the
warp's partition, a barrier release), instead of re-scanning and re-peeking
every warp per issued instruction.  All static per-instruction facts come
from the :mod:`repro.sim.program` decoded layer.  The loop is bit-identical
to the seed engine preserved in :mod:`repro.sim._reference_sm` — the
equivalence suite holds both to the same :class:`TimingResult` on every
bundled workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.ampere import A100, AmpereConfig
from repro.arch.registers import RegisterBankModel
from repro.errors import SimulatorError
from repro.sass.kernel import SassKernel
from repro.sim.executor import WarpExecutor, WarpState
from repro.sim.launch import LaunchContext
from repro.sim.memory import MemoryTimingModel, MemoryTimingStats
from repro.sim.program import DecodedProgram, decode_program

#: Safety valve against runaway schedules (branches that never exit, etc.).
MAX_DYNAMIC_INSTRUCTIONS_PER_WARP = 2_000_000

#: Distinct-issue-cycle tracking: evict cycles below the per-partition floor
#: once the recent set grows past this bound.  Memory stays O(latency spread
#: between partitions) instead of O(dynamic instructions).
_ISSUE_CYCLE_EVICT_THRESHOLD = 4096


# ---------------------------------------------------------------------------
# Functional (lockstep) runner
# ---------------------------------------------------------------------------
class FunctionalRunner:
    """Run one thread block functionally, warp phases separated by barriers."""

    def __init__(self, kernel: SassKernel, launch: LaunchContext):
        self.kernel = kernel
        self.launch = launch
        self.program: DecodedProgram = decode_program(kernel)

    def run_block(self, ctaid: tuple[int, int, int]) -> int:
        """Execute one thread block; returns total dynamic instructions."""
        shared = self.launch.new_shared_memory()
        executor = WarpExecutor(
            self.kernel.lines,
            self.launch,
            shared,
            label_positions=self.program.label_positions,
            program=self.program,
        )
        warps = [
            WarpState(warp_id=w, ctaid=ctaid)
            for w in range(self.kernel.metadata.num_warps)
        ]
        total = 0
        # Phase execution: every warp runs until it reaches a block barrier or
        # exits; then the next phase starts.  This matches how cooperative
        # tile loads (LDGSTS ... BAR.SYNC ... LDS) synchronize.
        guard = 0
        while any(not w.finished for w in warps):
            guard += 1
            if guard > 10_000:
                raise SimulatorError("functional runner exceeded the phase limit (missing EXIT?)")
            progressed = False
            for warp in warps:
                if warp.finished:
                    continue
                while True:
                    if warp.issued > MAX_DYNAMIC_INSTRUCTIONS_PER_WARP:
                        raise SimulatorError("warp exceeded the dynamic instruction limit")
                    outcome = executor.step(warp, warp.next_issue)
                    total += 1
                    progressed = True
                    if outcome.exited or warp.finished:
                        break
                    if outcome.hit_block_barrier:
                        break
            if not progressed:
                raise SimulatorError("functional runner made no progress (deadlocked barrier?)")
            # Align warps at the barrier.
            sync_point = max(w.next_issue for w in warps)
            for warp in warps:
                if not warp.finished:
                    warp.next_issue = max(warp.next_issue, sync_point)
        return total

    def run_grid(self) -> int:
        """Execute every thread block of the launch grid; returns instruction count."""
        total = 0
        for ctaid in self.launch.grid_config.block_ids():
            total += self.run_block(ctaid)
        return total


# ---------------------------------------------------------------------------
# Timing simulator
# ---------------------------------------------------------------------------
@dataclass
class TimingResult:
    """Result of simulating one thread block on one SM."""

    cycles: int
    instructions_issued: int
    issue_active_cycles: int
    memory_instructions: int
    tensor_instructions: int
    bank_conflict_stalls: int
    predicated_off: int
    memory_stats: MemoryTimingStats
    partitions: int
    warps: int

    @property
    def ipc(self) -> float:
        return self.instructions_issued / max(self.cycles, 1)


class TimingSimulator:
    """Cycle-approximate model of one SM executing one thread block.

    Event-driven: candidate issue cycles are cached per warp and invalidated
    only by the events that can change them — an issue in the same partition
    (partition free / LSU / tensor-unit cycles moved), the issuing warp's own
    state (pc, stall, scoreboard), or a block-barrier release.  Scheduling
    decisions are exactly those of the seed per-issue scan: the earliest
    candidate wins, ties go to the lowest warp id.
    """

    def __init__(self, kernel: SassKernel, launch: LaunchContext, config: AmpereConfig = A100):
        self.kernel = kernel
        self.launch = launch
        self.config = config
        self.program: DecodedProgram = decode_program(kernel)

    def run_block(self, ctaid: tuple[int, int, int] = (0, 0, 0)) -> TimingResult:
        config = self.config
        program = self.program
        shared = self.launch.new_shared_memory()
        memory_model = MemoryTimingModel(config)
        executor = WarpExecutor(
            self.kernel.lines,
            self.launch,
            shared,
            label_positions=program.label_positions,
            memory_latency=memory_model.request_latency,
            program=program,
        )
        num_warps = self.kernel.metadata.num_warps
        warps = [WarpState(warp_id=w, ctaid=ctaid) for w in range(num_warps)]
        partitions = config.partitions_per_sm
        part_of = [w % partitions for w in range(num_warps)]
        partition_warps = [
            [w for w in range(num_warps) if part_of[w] == p] for p in range(partitions)
        ]

        partition_free = [0] * partitions
        partition_mem_ok = [0] * partitions
        partition_tensor_ok = [0] * partitions
        partition_last_warp: list[int | None] = [None] * partitions
        bank_models = [
            RegisterBankModel(num_banks=config.register_banks, reuse_slots=config.reuse_cache_slots)
            for _ in range(partitions)
        ]

        # Cached per-warp scheduling state (the event-driven core).
        candidate_cycle = [0] * num_warps
        candidate_valid = [False] * num_warps
        warp_rec = [None] * num_warps
        unfinished = num_warps
        waiting = 0
        part_unfinished = [len(partition_warps[p]) for p in range(partitions)]

        issued = 0
        # Distinct issue cycles are counted incrementally: cycles below every
        # active partition's floor can never repeat, so they are finalized
        # into a counter and evicted from the (bounded) recent set.
        finalized_issue_cycles = 0
        recent_issue_cycles: set[int] = set()
        evicted_below = 0
        memory_instructions = 0
        tensor_instructions = 0
        bank_conflict_stalls = 0
        predicated_off = 0
        last_completion = 0
        guard = 0

        next_instr_pc = program.next_instr_pc
        decoded = program.decoded
        num_lines = program.num_lines
        lsu_issue_interval = config.memory.lsu_issue_interval
        hmma_issue_interval = config.hmma_issue_interval

        while unfinished > 0:
            guard += 1
            if guard > MAX_DYNAMIC_INSTRUCTIONS_PER_WARP:
                raise SimulatorError("timing simulator exceeded the issue limit")

            # Barrier release: if every unfinished warp is parked at the block
            # barrier, release them all at the latest arrival time.
            if waiting == unfinished:
                release = max(w.next_issue for w in warps if not w.finished) + 2
                for w in warps:
                    if not w.finished:
                        w.waiting_at_barrier = False
                        w.next_issue = release
                waiting = 0
                # Barrier invalidates the operand reuse caches.
                for model in bank_models:
                    model.invalidate()
                for wid in range(num_warps):
                    candidate_valid[wid] = False

            # Refresh stale candidates and pick the earliest issue cycle.
            # Ascending warp-id order reproduces the seed scan's tie-break.
            best_wid = -1
            best_cycle = 0
            for wid in range(num_warps):
                warp = warps[wid]
                if warp.finished or warp.waiting_at_barrier:
                    continue
                if not candidate_valid[wid]:
                    pc = next_instr_pc[warp.pc]
                    if pc >= num_lines:
                        warp.finished = True
                        unfinished -= 1
                        part_unfinished[part_of[wid]] -= 1
                        continue
                    warp.pc = pc
                    rec = decoded[pc]
                    p = part_of[wid]
                    cand = warp.next_issue
                    free = partition_free[p]
                    if free > cand:
                        cand = free
                    if rec.wait_mask:
                        clear = warp.barrier_clear_cycle(rec.wait_mask)
                        if clear > cand:
                            cand = clear
                    if rec.is_memory:
                        mem_ok = partition_mem_ok[p]
                        if mem_ok > cand:
                            cand = mem_ok
                    if rec.is_tensor:
                        tensor_ok = partition_tensor_ok[p]
                        if tensor_ok > cand:
                            cand = tensor_ok
                    candidate_cycle[wid] = cand
                    warp_rec[wid] = rec
                    candidate_valid[wid] = True
                cycle = candidate_cycle[wid]
                if best_wid < 0 or cycle < best_cycle:
                    best_wid = wid
                    best_cycle = cycle
            if best_wid < 0:
                break

            warp = warps[best_wid]
            rec = warp_rec[best_wid]
            partition = part_of[best_wid]
            bank_model = bank_models[partition]
            # A warp switch on the scheduler invalidates the operand reuse
            # cache (the §5.7.1 hypothesis for why the reordering wins).
            if partition_last_warp[partition] != best_wid:
                bank_model.invalidate()
                partition_last_warp[partition] = best_wid

            # Operand fetch: bank conflicts / reuse cache.
            conflict_stall = bank_model.operand_fetch_stalls_decoded(rec.read_regs, rec.reuse_regs)
            bank_conflict_stalls += conflict_stall
            issue_at = best_cycle + conflict_stall

            outcome = executor.step(warp, issue_at)
            bank_model.notify_write(rec.written_regs)

            issued += 1
            issue_cycle = outcome.issue_cycle
            recent_issue_cycles.add(issue_cycle)
            completion = outcome.completion_cycle
            if completion > last_completion:
                last_completion = completion
            if warp.next_issue > last_completion:
                last_completion = warp.next_issue
            if outcome.predicated_off:
                predicated_off += 1
            if outcome.is_memory:
                memory_instructions += 1
                partition_mem_ok[partition] = issue_cycle + lsu_issue_interval
            if rec.is_tensor:
                tensor_instructions += 1
                partition_tensor_ok[partition] = issue_cycle + hmma_issue_interval
            if outcome.hit_block_barrier:
                warp.waiting_at_barrier = True
                waiting += 1
            partition_free[partition] = issue_cycle + 1
            if warp.finished:
                unfinished -= 1
                part_unfinished[partition] -= 1

            # The issue moved this partition's free/mem/tensor cycles and the
            # issuing warp's own state; only those candidates are stale.
            for wid in partition_warps[partition]:
                candidate_valid[wid] = False

            if len(recent_issue_cycles) > _ISSUE_CYCLE_EVICT_THRESHOLD:
                floors = [
                    partition_free[p] for p in range(partitions) if part_unfinished[p] > 0
                ]
                # Scan only when the watermark advanced since the last sweep,
                # so a frozen floor (one partition parked at a barrier while
                # others issue) cannot degrade into per-issue full scans.
                if floors and min(floors) > evicted_below:
                    evicted_below = min(floors)
                    stale = {c for c in recent_issue_cycles if c < evicted_below}
                    finalized_issue_cycles += len(stale)
                    recent_issue_cycles -= stale

        cycles = max(last_completion, 1)
        return TimingResult(
            cycles=int(cycles),
            instructions_issued=issued,
            issue_active_cycles=finalized_issue_cycles + len(recent_issue_cycles),
            memory_instructions=memory_instructions,
            tensor_instructions=tensor_instructions,
            bank_conflict_stalls=bank_conflict_stalls,
            predicated_off=predicated_off,
            memory_stats=memory_model.stats,
            partitions=partitions,
            warps=num_warps,
        )
