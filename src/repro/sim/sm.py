"""Streaming-multiprocessor model: warp scheduling, scoreboards and timing.

Two drivers share the :class:`repro.sim.executor.WarpExecutor` semantics:

* :class:`FunctionalRunner` executes every warp of a thread block in lockstep
  phases between block barriers.  It is used to produce kernel *outputs*
  (probabilistic testing, examples) and is still timing-aware within a warp,
  so schedules with broken stall counts produce wrong values.
* :class:`TimingSimulator` models one SM executing one thread block: four
  sub-partitions each issue at most one instruction per cycle from an
  eligible warp, variable-latency results are tracked through scoreboard
  barriers, load/store and tensor-core units have limited issue throughput,
  and the operand-reuse cache is invalidated whenever the scheduler switches
  warps.  Its cycle count is the reward signal of the assembly game.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.ampere import A100, AmpereConfig
from repro.arch.registers import RegisterBankModel
from repro.errors import SimulatorError
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import SassKernel
from repro.sass.operands import RegisterOperand
from repro.sim.executor import StepOutcome, WarpExecutor, WarpState
from repro.sim.launch import LaunchContext
from repro.sim.memory import MemoryTimingModel, MemoryTimingStats

#: Safety valve against runaway schedules (branches that never exit, etc.).
MAX_DYNAMIC_INSTRUCTIONS_PER_WARP = 2_000_000


def _label_positions(kernel: SassKernel) -> dict[str, int]:
    return {line.name: i for i, line in enumerate(kernel.lines) if isinstance(line, Label)}


# ---------------------------------------------------------------------------
# Functional (lockstep) runner
# ---------------------------------------------------------------------------
class FunctionalRunner:
    """Run one thread block functionally, warp phases separated by barriers."""

    def __init__(self, kernel: SassKernel, launch: LaunchContext):
        self.kernel = kernel
        self.launch = launch

    def run_block(self, ctaid: tuple[int, int, int]) -> int:
        """Execute one thread block; returns total dynamic instructions."""
        shared = self.launch.new_shared_memory()
        executor = WarpExecutor(
            self.kernel.lines,
            self.launch,
            shared,
            label_positions=_label_positions(self.kernel),
        )
        warps = [
            WarpState(warp_id=w, ctaid=ctaid)
            for w in range(self.kernel.metadata.num_warps)
        ]
        total = 0
        # Phase execution: every warp runs until it reaches a block barrier or
        # exits; then the next phase starts.  This matches how cooperative
        # tile loads (LDGSTS ... BAR.SYNC ... LDS) synchronize.
        guard = 0
        while any(not w.finished for w in warps):
            guard += 1
            if guard > 10_000:
                raise SimulatorError("functional runner exceeded the phase limit (missing EXIT?)")
            progressed = False
            for warp in warps:
                if warp.finished:
                    continue
                while True:
                    if warp.issued > MAX_DYNAMIC_INSTRUCTIONS_PER_WARP:
                        raise SimulatorError("warp exceeded the dynamic instruction limit")
                    outcome = executor.step(warp, warp.next_issue)
                    total += 1
                    progressed = True
                    if outcome.exited or warp.finished:
                        break
                    if outcome.hit_block_barrier:
                        break
            if not progressed:
                raise SimulatorError("functional runner made no progress (deadlocked barrier?)")
            # Align warps at the barrier.
            sync_point = max(w.next_issue for w in warps)
            for warp in warps:
                if not warp.finished:
                    warp.next_issue = max(warp.next_issue, sync_point)
        return total

    def run_grid(self) -> int:
        """Execute every thread block of the launch grid; returns instruction count."""
        total = 0
        for ctaid in self.launch.grid_config.block_ids():
            total += self.run_block(ctaid)
        return total


# ---------------------------------------------------------------------------
# Timing simulator
# ---------------------------------------------------------------------------
@dataclass
class TimingResult:
    """Result of simulating one thread block on one SM."""

    cycles: int
    instructions_issued: int
    issue_active_cycles: int
    memory_instructions: int
    tensor_instructions: int
    bank_conflict_stalls: int
    predicated_off: int
    memory_stats: MemoryTimingStats
    partitions: int
    warps: int

    @property
    def ipc(self) -> float:
        return self.instructions_issued / max(self.cycles, 1)


class TimingSimulator:
    """Cycle-approximate model of one SM executing one thread block."""

    def __init__(self, kernel: SassKernel, launch: LaunchContext, config: AmpereConfig = A100):
        self.kernel = kernel
        self.launch = launch
        self.config = config

    def run_block(self, ctaid: tuple[int, int, int] = (0, 0, 0)) -> TimingResult:
        config = self.config
        shared = self.launch.new_shared_memory()
        memory_model = MemoryTimingModel(config)
        executor = WarpExecutor(
            self.kernel.lines,
            self.launch,
            shared,
            label_positions=_label_positions(self.kernel),
            memory_latency=memory_model.request_latency,
        )
        num_warps = self.kernel.metadata.num_warps
        warps = [WarpState(warp_id=w, ctaid=ctaid) for w in range(num_warps)]
        partitions = config.partitions_per_sm
        partition_of = {w.warp_id: w.warp_id % partitions for w in warps}

        partition_free = [0] * partitions
        partition_mem_ok = [0] * partitions
        partition_tensor_ok = [0] * partitions
        partition_last_warp: list[int | None] = [None] * partitions
        bank_models = [
            RegisterBankModel(num_banks=config.register_banks, reuse_slots=config.reuse_cache_slots)
            for _ in range(partitions)
        ]

        issued = 0
        issue_cycles: set[int] = set()
        memory_instructions = 0
        tensor_instructions = 0
        bank_conflict_stalls = 0
        predicated_off = 0
        last_completion = 0
        guard = 0

        while any(not w.finished for w in warps):
            guard += 1
            if guard > MAX_DYNAMIC_INSTRUCTIONS_PER_WARP:
                raise SimulatorError("timing simulator exceeded the issue limit")

            # Barrier release: if every unfinished warp is parked at the block
            # barrier, release them all at the latest arrival time.
            active = [w for w in warps if not w.finished]
            if active and all(w.waiting_at_barrier for w in active):
                release = max(w.next_issue for w in active) + 2
                for w in active:
                    w.waiting_at_barrier = False
                    w.next_issue = release
                # Barrier invalidates the operand reuse caches.
                for model in bank_models:
                    model.invalidate()

            # Pick the (warp) with the earliest possible issue cycle.
            best_warp: WarpState | None = None
            best_cycle = None
            best_instr: Instruction | None = None
            for warp in warps:
                if warp.finished or warp.waiting_at_barrier:
                    continue
                instr = self._peek(warp)
                if instr is None:
                    warp.finished = True
                    continue
                partition = partition_of[warp.warp_id]
                candidate = max(warp.next_issue, partition_free[partition])
                if instr.control.wait_mask:
                    candidate = max(candidate, warp.barrier_clear_cycle(instr.control.wait_mask))
                if instr.is_memory:
                    candidate = max(candidate, partition_mem_ok[partition])
                if instr.base_opcode in {"HMMA", "IMMA"}:
                    candidate = max(candidate, partition_tensor_ok[partition])
                if best_cycle is None or candidate < best_cycle or (
                    candidate == best_cycle and best_warp is not None and warp.warp_id < best_warp.warp_id
                ):
                    best_cycle = candidate
                    best_warp = warp
                    best_instr = instr
            if best_warp is None:
                break

            partition = partition_of[best_warp.warp_id]
            bank_model = bank_models[partition]
            # A warp switch on the scheduler invalidates the operand reuse
            # cache (the §5.7.1 hypothesis for why the reordering wins).
            if partition_last_warp[partition] != best_warp.warp_id:
                bank_model.invalidate()
                partition_last_warp[partition] = best_warp.warp_id

            # Operand fetch: bank conflicts / reuse cache.
            read_regs = sorted(best_instr.read_registers())
            reuse_regs = sorted(
                op.index
                for op in best_instr.operands
                if isinstance(op, RegisterOperand) and op.reuse and not op.is_rz
            )
            conflict_stall = bank_model.operand_fetch_stalls(read_regs, reuse_regs)
            bank_conflict_stalls += conflict_stall
            issue_at = best_cycle + conflict_stall

            outcome: StepOutcome = executor.step(best_warp, issue_at)
            bank_model.notify_write(best_instr.written_registers())

            issued += 1
            issue_cycles.add(outcome.issue_cycle)
            last_completion = max(last_completion, outcome.completion_cycle, best_warp.next_issue)
            if outcome.predicated_off:
                predicated_off += 1
            if outcome.is_memory:
                memory_instructions += 1
                partition_mem_ok[partition] = outcome.issue_cycle + config.memory.lsu_issue_interval
            if best_instr.base_opcode in {"HMMA", "IMMA"}:
                tensor_instructions += 1
                partition_tensor_ok[partition] = outcome.issue_cycle + config.hmma_issue_interval
            if outcome.hit_block_barrier:
                best_warp.waiting_at_barrier = True
            partition_free[partition] = outcome.issue_cycle + 1

        cycles = max(last_completion, 1)
        return TimingResult(
            cycles=int(cycles),
            instructions_issued=issued,
            issue_active_cycles=len(issue_cycles),
            memory_instructions=memory_instructions,
            tensor_instructions=tensor_instructions,
            bank_conflict_stalls=bank_conflict_stalls,
            predicated_off=predicated_off,
            memory_stats=memory_model.stats,
            partitions=partitions,
            warps=num_warps,
        )

    def _peek(self, warp: WarpState) -> Instruction | None:
        lines = self.kernel.lines
        pc = warp.pc
        while pc < len(lines) and isinstance(lines[pc], Label):
            pc += 1
        if pc >= len(lines):
            return None
        warp.pc = pc
        line = lines[pc]
        return line if isinstance(line, Instruction) else None
