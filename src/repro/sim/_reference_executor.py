"""Frozen seed warp executor (golden model; do not modify).

This is the pre-decoded-program :class:`WarpExecutor` preserved byte-for-byte
(modulo renames and the uncached helper functions below) so the equivalence
suite and the throughput benchmark can hold the production engine to the seed
engine's exact semantics *and* cost structure on the current host.  In
particular it deliberately keeps the behaviors the production executor
optimized away: per-step label scanning, per-step dict dispatch on the base
opcode, and per-call recomputation of operand partitions / def-use sets
(the production ``Instruction`` now caches those, so this module carries
uncached replicas).

Nothing outside tests and benchmarks should import this module.
"""


from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.latency_table import execution_latency
from repro.errors import ExecutionError
from repro.sass.instruction import Instruction
from repro.sass.operands import (
    ConstantMemoryOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    PredicateOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    UniformRegisterOperand,
)
from repro.sass import opcodes as _opcodes_mod
from repro.sim.launch import LaunchContext
from repro.sim.memory import MemoryRequest, SharedMemory

#: Bytes moved per warp for a global/shared access, keyed by width modifier.
#: ``256`` (1 KiB per warp) models a pair of back-to-back 128-bit accesses
#: that real kernels issue as two instructions; see DESIGN.md.
_WIDTH_BYTES = {"256": 1024, "128": 512, "64": 256, "32": 128, "16": 64}
_DEFAULT_ACCESS_BYTES = 512


def access_bytes(instr: Instruction) -> int:
    """Bytes moved per warp by a memory instruction (from its width modifier)."""
    for mod in _modifiers(instr):
        if mod in _WIDTH_BYTES:
            return _WIDTH_BYTES[mod]
    return _DEFAULT_ACCESS_BYTES


@dataclass
class _Slot:
    """A register slot: current value, when it becomes visible, and the stale value."""

    value: object = 0
    ready: int = 0
    stale: object = 0

    def read(self, cycle: int):
        return self.value if cycle >= self.ready else self.stale

    def write(self, value, ready: int) -> None:
        self.stale = self.value
        self.value = value
        self.ready = ready


class RegisterFile:
    """Timing-aware storage for one warp's registers / predicates / uniforms."""

    def __init__(self) -> None:
        self._regs: dict[int, _Slot] = {}
        self._preds: dict[int, _Slot] = {}
        self._uregs: dict[int, _Slot] = {}

    def _slot(self, table: dict[int, _Slot], index: int) -> _Slot:
        slot = table.get(index)
        if slot is None:
            slot = _Slot()
            table[index] = slot
        return slot

    # registers -------------------------------------------------------
    def read_reg(self, index: int, cycle: int):
        return self._slot(self._regs, index).read(cycle)

    def write_reg(self, index: int, value, ready: int) -> None:
        self._slot(self._regs, index).write(value, ready)

    def reg_ready(self, index: int) -> int:
        return self._slot(self._regs, index).ready

    # predicates ------------------------------------------------------
    def read_pred(self, index: int, cycle: int) -> bool:
        return bool(self._slot(self._preds, index).read(cycle))

    def write_pred(self, index: int, value: bool, ready: int) -> None:
        self._slot(self._preds, index).write(bool(value), ready)

    # uniform registers ------------------------------------------------
    def read_ureg(self, index: int, cycle: int):
        return self._slot(self._uregs, index).read(cycle)

    def write_ureg(self, index: int, value, ready: int) -> None:
        self._slot(self._uregs, index).write(value, ready)


@dataclass
class WarpState:
    """Mutable per-warp execution state."""

    warp_id: int
    ctaid: tuple[int, int, int]
    registers: RegisterFile = field(default_factory=RegisterFile)
    #: Listing index of the next line to execute.
    pc: int = 0
    #: Earliest cycle at which the warp may issue its next instruction.
    next_issue: int = 0
    #: Scoreboard: slot index -> cycle at which the barrier clears.
    scoreboard: dict[int, int] = field(default_factory=dict)
    finished: bool = False
    waiting_at_barrier: bool = False
    #: dynamic instruction count (profiling)
    issued: int = 0

    def barrier_clear_cycle(self, wait_mask) -> int:
        """Cycle at which every scoreboard slot in ``wait_mask`` is clear."""
        return max((self.scoreboard.get(slot, 0) for slot in wait_mask), default=0)

    def set_barrier(self, slot: int, clear_cycle: int) -> None:
        self.scoreboard[slot] = max(self.scoreboard.get(slot, 0), clear_cycle)


@dataclass
class StepOutcome:
    """What happened when one instruction was issued."""

    instruction: Instruction
    issue_cycle: int
    completion_cycle: int
    is_memory: bool = False
    memory_request: MemoryRequest | None = None
    branched: bool = False
    exited: bool = False
    hit_block_barrier: bool = False
    predicated_off: bool = False


class ReferenceWarpExecutor:
    """Executes instructions for warps of a single thread block.

    The executor is driver-agnostic: both the sequential functional runner and
    the SM timing simulator call :meth:`step` with an issue cycle they chose,
    and the executor updates the warp state, performs the architectural
    effects and reports latency/completion information back.
    """

    def __init__(
        self,
        lines,
        launch: LaunchContext,
        shared: SharedMemory,
        *,
        label_positions: dict[str, int],
        memory_latency=None,
    ) -> None:
        self.lines = lines
        self.launch = launch
        self.shared = shared
        self.labels = label_positions
        #: Callable (MemoryRequest, issue_cycle) -> latency; defaults to a
        #: fixed latency per opcode class when no timing model is attached.
        self.memory_latency = memory_latency

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------
    def _eval(self, operand: Operand, warp: WarpState, cycle: int):
        if isinstance(operand, RegisterOperand):
            if operand.is_rz:
                value = 0
            else:
                value = warp.registers.read_reg(operand.index, cycle)
            return self._apply_modifiers(value, operand)
        if isinstance(operand, UniformRegisterOperand):
            return 0 if operand.is_urz else warp.registers.read_ureg(operand.index, cycle)
        if isinstance(operand, PredicateOperand):
            value = True if operand.is_pt else warp.registers.read_pred(operand.index, cycle)
            return (not value) if operand.negated else value
        if isinstance(operand, ImmediateOperand):
            return operand.value
        if isinstance(operand, ConstantMemoryOperand):
            return self.launch.constant(operand.bank, operand.offset)
        if isinstance(operand, SpecialRegisterOperand):
            return self._special_register(operand.name, warp, cycle)
        if isinstance(operand, MemoryOperand):
            return self._address(operand, warp, cycle)
        if isinstance(operand, LabelOperand):
            return operand.name
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    @staticmethod
    def _apply_modifiers(value, operand: RegisterOperand):
        if operand.absolute:
            value = np.abs(value) if isinstance(value, np.ndarray) else abs(value)
        if operand.negated:
            value = -value
        return value

    def _special_register(self, name: str, warp: WarpState, cycle: int):
        ctaid_x, ctaid_y, ctaid_z = warp.ctaid
        mapping = {
            "SR_CTAID.X": ctaid_x,
            "SR_CTAID.Y": ctaid_y,
            "SR_CTAID.Z": ctaid_z,
            "SR_TID.X": warp.warp_id * 32,
            "SR_TID.Y": 0,
            "SR_TID.Z": 0,
            "SR_LANEID": 0,
            "SR_CLOCKLO": cycle,
            "SR_CLOCKHI": 0,
            "SR_WARPID": warp.warp_id,
        }
        if name in mapping:
            return mapping[name]
        raise ExecutionError(f"unmodelled special register {name}")

    def _address(self, operand: MemoryOperand, warp: WarpState, cycle: int) -> int:
        address = operand.offset
        if operand.base is not None and not operand.base.is_rz:
            address += int(warp.registers.read_reg(operand.base.index, cycle))
        if operand.uniform_base is not None and not operand.uniform_base.is_urz:
            address += int(warp.registers.read_ureg(operand.uniform_base.index, cycle))
        return int(address)

    # ------------------------------------------------------------------
    # Register writes
    # ------------------------------------------------------------------
    def _write_dest(self, instr: Instruction, warp: WarpState, value, ready: int) -> None:
        dests = _dest_operands(instr)
        if not dests:
            return
        dest = dests[0]
        if isinstance(dest, RegisterOperand):
            if not dest.is_rz:
                warp.registers.write_reg(dest.index, value, ready)
        elif isinstance(dest, PredicateOperand):
            if not dest.is_pt:
                warp.registers.write_pred(dest.index, bool(value), ready)
        elif isinstance(dest, UniformRegisterOperand):
            if not dest.is_urz:
                warp.registers.write_ureg(dest.index, value, ready)
        # Secondary destinations (e.g. the second predicate of ISETP, the
        # carry predicate of IADD3.X) are written as "don't care" values.
        for extra in dests[1:]:
            if isinstance(extra, PredicateOperand) and not extra.is_pt:
                warp.registers.write_pred(extra.index, False, ready)
            elif isinstance(extra, RegisterOperand) and not extra.is_rz:
                warp.registers.write_reg(extra.index, 0, ready)

    # ------------------------------------------------------------------
    # The main step function
    # ------------------------------------------------------------------
    def step(self, warp: WarpState, issue_cycle: int) -> StepOutcome:
        """Issue the instruction at ``warp.pc`` at ``issue_cycle``."""
        from repro.sass.instruction import Label  # local import to avoid cycle

        while warp.pc < len(self.lines) and isinstance(self.lines[warp.pc], Label):
            warp.pc += 1
        if warp.pc >= len(self.lines):
            warp.finished = True
            return StepOutcome(
                instruction=Instruction("EXIT"),
                issue_cycle=issue_cycle,
                completion_cycle=issue_cycle,
                exited=True,
            )

        instr: Instruction = self.lines[warp.pc]
        control = instr.control

        # Wait barriers stall the issue until the scoreboard slots clear.
        if control.wait_mask:
            issue_cycle = max(issue_cycle, warp.barrier_clear_cycle(control.wait_mask))

        warp.issued += 1
        outcome = StepOutcome(instruction=instr, issue_cycle=issue_cycle, completion_cycle=issue_cycle)

        # Guard predicate: a predicated-off instruction still occupies the
        # issue slot (and its stall count) but has no architectural effect.
        if instr.predicate is not None:
            pred_value = self._eval(instr.predicate, warp, issue_cycle)
            if not pred_value:
                outcome.predicated_off = True
                warp.pc += 1
                warp.next_issue = issue_cycle + max(control.stall, 1)
                return outcome

        base = _base_opcode(instr)
        handler = _HANDLERS.get(base, None)
        if handler is None:
            raise ExecutionError(f"unmodelled opcode {instr.opcode!r}")
        handler(self, instr, warp, issue_cycle, outcome)

        if not outcome.branched and not outcome.exited:
            warp.pc += 1
        warp.next_issue = issue_cycle + max(control.stall, 1)

        # Scoreboard barriers set by this instruction.
        if control.write_barrier is not None:
            warp.set_barrier(control.write_barrier, outcome.completion_cycle)
        if control.read_barrier is not None:
            # Source operands are consumed a few cycles after issue (the
            # request leaves the register file for the LSU).
            warp.set_barrier(control.read_barrier, issue_cycle + 10)
        return outcome

    # ------------------------------------------------------------------
    # Memory helpers
    # ------------------------------------------------------------------
    def _memory_latency(self, request: MemoryRequest, instr: Instruction, issue_cycle: int) -> int:
        if self.memory_latency is not None:
            return self.memory_latency(request, issue_cycle)
        return execution_latency(instr.opcode)

    def _fragment_from_bytes(self, raw: np.ndarray, dtype: np.dtype) -> np.ndarray:
        return raw.view(dtype).astype(np.float32)

    def _fragment_to_bytes(self, fragment, dtype: np.dtype, nbytes: int) -> np.ndarray:
        array = np.asarray(fragment, dtype=np.float32).reshape(-1)
        out = array.astype(dtype)
        needed = nbytes // dtype.itemsize
        if out.size < needed:
            out = np.concatenate([out, np.zeros(needed - out.size, dtype=dtype)])
        return out[:needed]




# ---------------------------------------------------------------------------
# Uncached instruction-metadata replicas (seed cost structure)
# ---------------------------------------------------------------------------
def _opcode_info(instr: Instruction):
    return _opcodes_mod.lookup(instr.opcode)


def _base_opcode(instr: Instruction) -> str:
    return instr.opcode.split(".", 1)[0]


def _modifiers(instr: Instruction) -> tuple:
    return tuple(instr.opcode.split(".")[1:])


def _dest_operands(instr: Instruction) -> tuple:
    remaining = _opcode_info(instr).dest_count
    dests = []
    for op in instr.operands:
        if remaining == 0:
            break
        if isinstance(op, (RegisterOperand, PredicateOperand, UniformRegisterOperand)):
            dests.append(op)
            remaining -= 1
        else:
            break
    return tuple(dests)


def _source_operands(instr: Instruction) -> tuple:
    dests = set(id(op) for op in _dest_operands(instr))
    return tuple(op for op in instr.operands if id(op) not in dests)


def _dest_width_registers(instr: Instruction) -> int:
    mods = _modifiers(instr)
    if "WIDE" in mods:
        return 2
    if "128" in mods:
        return 4
    if "64" in mods:
        return 2
    return 1


def _written_registers(instr: Instruction) -> frozenset:
    regs = set()
    width = _dest_width_registers(instr)
    for op in _dest_operands(instr):
        if isinstance(op, RegisterOperand):
            regs |= op.registers()
            if width > 1 and not op.is_rz:
                regs |= {op.index + i for i in range(width)}
    return frozenset(regs)


def _read_registers(instr: Instruction) -> frozenset:
    regs = set()
    width = _dest_width_registers(instr) if _opcode_info(instr).writes_memory else 1
    for op in _source_operands(instr):
        regs |= op.registers()
        if (
            width > 1
            and isinstance(op, RegisterOperand)
            and not op.is_rz
            and not op.is64
        ):
            regs |= {op.index + i for i in range(width)}
    for op in instr.operands:
        if isinstance(op, MemoryOperand):
            regs |= op.registers()
    return frozenset(regs)


# ---------------------------------------------------------------------------
# Instruction handlers
# ---------------------------------------------------------------------------
def _as_int(value) -> int:
    if isinstance(value, np.ndarray):
        return int(value.reshape(-1)[0])
    return int(value)


def _fixed_ready(instr: Instruction, issue_cycle: int) -> int:
    return issue_cycle + execution_latency(instr.opcode)


def _handle_mov(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    value = ex._eval(_source_operands(instr)[0], warp, cycle)
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_s2r(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    value = ex._eval(_source_operands(instr)[0], warp, cycle)
    ready = cycle + execution_latency(instr.opcode)
    ex._write_dest(instr, warp, value, ready)
    outcome.completion_cycle = ready


def _handle_imad(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    if len(srcs) < 3:
        srcs = srcs + [0] * (3 - len(srcs))
    a, b, c = srcs[0], srcs[1], srcs[2]
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) or isinstance(c, np.ndarray):
        value = np.asarray(a) * np.asarray(b) + np.asarray(c)
    else:
        value = _as_int(a) * _as_int(b) + _as_int(c)
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_iadd3(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    total = 0
    for s in srcs:
        if isinstance(s, bool):
            continue
        total = total + (_as_int(s) if not isinstance(s, np.ndarray) else s)
    ex._write_dest(instr, warp, total, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_iabs(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    value = ex._eval(_source_operands(instr)[0], warp, cycle)
    result = np.abs(value) if isinstance(value, np.ndarray) else abs(_as_int(value))
    ex._write_dest(instr, warp, result, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_lea(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    a = _as_int(srcs[0]) if srcs else 0
    b = _as_int(srcs[1]) if len(srcs) > 1 else 0
    shift = _as_int(srcs[2]) if len(srcs) > 2 else 0
    value = b + (a << shift)
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_shf(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    a = _as_int(srcs[0]) if srcs else 0
    amount = _as_int(srcs[1]) if len(srcs) > 1 else 0
    if "R" in _modifiers(instr):
        value = a >> amount
    else:
        value = a << amount
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_lop3(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    ints = [_as_int(s) for s in srcs if not isinstance(s, bool)][:3]
    while len(ints) < 2:
        ints.append(0)
    mods = _modifiers(instr)
    if "OR" in mods:
        value = ints[0] | ints[1]
    elif "XOR" in mods:
        value = ints[0] ^ ints[1]
    else:
        value = ints[0] & ints[1]
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


_CMP_FUNCS = {
    "GE": lambda a, b: a >= b,
    "GT": lambda a, b: a > b,
    "LT": lambda a, b: a < b,
    "LE": lambda a, b: a <= b,
    "EQ": lambda a, b: a == b,
    "NE": lambda a, b: a != b,
}


def _handle_isetp(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    numeric = [s for s in srcs if not isinstance(s, bool)]
    a = _as_int(numeric[0]) if numeric else 0
    b = _as_int(numeric[1]) if len(numeric) > 1 else 0
    cmp_fn = None
    for mod in _modifiers(instr):
        if mod in _CMP_FUNCS:
            cmp_fn = _CMP_FUNCS[mod]
            break
    result = bool(cmp_fn(a, b)) if cmp_fn is not None else False
    # Combine with the trailing source predicate (".AND" semantics).
    pred_srcs = [s for s in srcs if isinstance(s, bool)]
    if pred_srcs:
        if "OR" in _modifiers(instr):
            result = result or pred_srcs[-1]
        else:
            result = result and pred_srcs[-1]
    ex._write_dest(instr, warp, result, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_imnmx(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    numeric = [s for s in srcs if not isinstance(s, bool)]
    a, b = _as_int(numeric[0]), _as_int(numeric[1])
    use_min = True
    for s in srcs:
        if isinstance(s, bool):
            use_min = s
    value = min(a, b) if use_min else max(a, b)
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_sel(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    numeric = [s for s in srcs if not isinstance(s, bool)]
    preds = [s for s in srcs if isinstance(s, bool)]
    a = numeric[0] if numeric else 0
    b = numeric[1] if len(numeric) > 1 else 0
    condition = preds[-1] if preds else True
    value = a if condition else b
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _binary_float(op):
    def handler(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
        srcs = [ex._eval(s, warp, cycle) for s in _source_operands(instr)]
        arrays = [np.asarray(s, dtype=np.float32) if not isinstance(s, bool) else s for s in srcs]
        numeric = [a for a in arrays if not isinstance(a, bool)]
        a = numeric[0] if numeric else np.float32(0)
        b = numeric[1] if len(numeric) > 1 else np.float32(0)
        value = op(a, b)
        ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
        outcome.completion_cycle = _fixed_ready(instr, cycle)

    return handler


def _handle_ffma(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(s, warp, cycle) for s in _source_operands(instr)]
    numeric = [np.asarray(s, dtype=np.float32) for s in srcs if not isinstance(s, bool)]
    while len(numeric) < 3:
        numeric.append(np.float32(0))
    value = numeric[0] * numeric[1] + numeric[2]
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_fmnmx(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    srcs = [ex._eval(s, warp, cycle) for s in _source_operands(instr)]
    numeric = [np.asarray(s, dtype=np.float32) for s in srcs if not isinstance(s, bool)]
    preds = [s for s in srcs if isinstance(s, bool)]
    a = numeric[0] if numeric else np.float32(0)
    b = numeric[1] if len(numeric) > 1 else np.float32(0)
    use_min = preds[-1] if preds else True
    value = np.minimum(a, b) if use_min else np.maximum(a, b)
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_mufu(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    source = ex._eval(_source_operands(instr)[0], warp, cycle)
    x = np.asarray(source, dtype=np.float32)
    mods = _modifiers(instr)
    if "RCP" in mods:
        value = np.where(x != 0, 1.0 / np.where(x == 0, 1.0, x), np.float32(np.inf))
    elif "EX2" in mods:
        value = np.exp2(x)
    elif "LG2" in mods:
        value = np.log2(np.maximum(x, np.float32(1e-30)))
    elif "RSQ" in mods:
        value = 1.0 / np.sqrt(np.maximum(x, np.float32(1e-30)))
    elif "SQRT" in mods:
        value = np.sqrt(np.maximum(x, np.float32(0)))
    else:
        value = x
    ready = cycle + execution_latency(instr.opcode)
    ex._write_dest(instr, warp, value, ready)
    outcome.completion_cycle = ready


def _handle_convert(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    source = ex._eval(_source_operands(instr)[0], warp, cycle)
    base = _base_opcode(instr)
    if base == "I2F":
        value = np.float32(_as_int(source)) if not isinstance(source, np.ndarray) else source.astype(np.float32)
    elif base == "F2I":
        value = (
            int(np.asarray(source, dtype=np.float32))
            if not isinstance(source, np.ndarray)
            else source.astype(np.int64)
        )
    else:  # F2F / I2I: representation changes we do not model numerically
        value = source
    ready = cycle + execution_latency(instr.opcode)
    ex._write_dest(instr, warp, value, ready)
    outcome.completion_cycle = ready


def _hmma_shapes(instr: Instruction) -> tuple[int, int, int]:
    """Decode the (m, n, k) shape from an HMMA modifier.

    Two encodings are accepted: the explicit ``M_N_K`` form emitted by the
    mini-Triton backend (``HMMA.16_8_16``) and the classic concatenated names
    used in real Ampere listings (``HMMA.16816``).
    """
    known = {"16816": (16, 8, 16), "1688": (16, 8, 8), "884": (8, 8, 4), "161616": (16, 16, 16)}
    for mod in _modifiers(instr):
        if "_" in mod:
            parts = mod.split("_")
            if len(parts) == 3 and all(p.isdigit() for p in parts):
                return (int(parts[0]), int(parts[1]), int(parts[2]))
        if mod in known:
            return known[mod]
    return (16, 8, 16)


def _handle_hmma(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    m, n, k = _hmma_shapes(instr)
    srcs = [ex._eval(s, warp, cycle) for s in _source_operands(instr)]
    numeric = [np.asarray(s, dtype=np.float32) for s in srcs if not isinstance(s, bool)]
    while len(numeric) < 3:
        numeric.append(np.zeros(1, dtype=np.float32))
    a = _reshape_fragment(numeric[0], (m, k))
    if "TB" in _modifiers(instr):
        # B fragment stored (n, k) row-major; transpose before the multiply.
        b = _reshape_fragment(numeric[1], (n, k)).T
    else:
        b = _reshape_fragment(numeric[1], (k, n))
    c = _reshape_fragment(numeric[2], (m, n))
    value = (a @ b + c).reshape(-1)
    ready = cycle + execution_latency(instr.opcode)
    ex._write_dest(instr, warp, value, ready)
    outcome.completion_cycle = ready


def _reshape_fragment(array: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    needed = shape[0] * shape[1]
    flat = np.asarray(array, dtype=np.float32).reshape(-1)
    if flat.size == needed:
        return flat.reshape(shape)
    if flat.size > needed:
        return flat[:needed].reshape(shape)
    out = np.zeros(needed, dtype=np.float32)
    out[: flat.size] = flat
    return out.reshape(shape)


def _row_layout(instr: Instruction, nbytes: int) -> tuple[int, int]:
    """Optional (row_bytes, row_stride) trailing immediates of a memory access.

    Real memory instructions address 32 lanes individually, which lets one
    instruction gather/scatter a strided 2-D tile.  The mini-Triton backend
    encodes that per-lane layout as two trailing immediates; contiguous
    accesses omit them.
    """
    from repro.sass.operands import ImmediateOperand as _Imm

    imms = [op for op in instr.operands if isinstance(op, _Imm) and not op.is_float]
    if len(imms) >= 2:
        row_bytes = int(imms[-2].value)
        row_stride = int(imms[-1].value)
        if 0 < row_bytes <= nbytes and row_stride > 0:
            return row_bytes, row_stride
    return nbytes, nbytes


def _gather_global(ex: ReferenceWarpExecutor, address: int, nbytes: int, row_bytes: int, stride: int) -> np.ndarray:
    rows = max(1, nbytes // row_bytes)
    if rows == 1:
        return ex.launch.global_memory.read_bytes(address, nbytes)
    chunks = [ex.launch.global_memory.read_bytes(address + r * stride, row_bytes) for r in range(rows)]
    return np.concatenate(chunks)


def _scatter_global(ex: ReferenceWarpExecutor, address: int, data: np.ndarray, row_bytes: int, stride: int) -> None:
    data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    rows = max(1, len(data) // row_bytes)
    if rows == 1:
        ex.launch.global_memory.write_bytes(address, data)
        return
    for r in range(rows):
        ex.launch.global_memory.write_bytes(address + r * stride, data[r * row_bytes : (r + 1) * row_bytes])


def _gather_shared(ex: ReferenceWarpExecutor, offset: int, nbytes: int, row_bytes: int, stride: int) -> np.ndarray:
    rows = max(1, nbytes // row_bytes)
    if rows == 1:
        return ex.shared.read_bytes(offset, nbytes)
    chunks = [ex.shared.read_bytes(offset + r * stride, row_bytes) for r in range(rows)]
    return np.concatenate(chunks)


def _scatter_shared(ex: ReferenceWarpExecutor, offset: int, data: np.ndarray, row_bytes: int, stride: int) -> None:
    data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    rows = max(1, len(data) // row_bytes)
    if rows == 1:
        ex.shared.write_bytes(offset, data)
        return
    for r in range(rows):
        ex.shared.write_bytes(offset + r * stride, data[r * row_bytes : (r + 1) * row_bytes])


def _handle_ldg(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    mem_ops = instr.memory_operands()
    address = ex._address(mem_ops[0], warp, cycle)
    nbytes = access_bytes(instr)
    row_bytes, stride = _row_layout(instr, nbytes)
    request = MemoryRequest(space="global", address=address, nbytes=nbytes, is_store=False)
    latency = ex._memory_latency(request, instr, cycle)
    dtype = ex.launch.global_memory.dtype_at(address)
    raw = _gather_global(ex, address, nbytes, row_bytes, stride)
    fragment = ex._fragment_from_bytes(raw, dtype)
    ready = cycle + latency
    ex._write_dest(instr, warp, fragment, ready)
    outcome.is_memory = True
    outcome.memory_request = request
    outcome.completion_cycle = ready


def _handle_stg(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    mem_ops = instr.memory_operands()
    address = ex._address(mem_ops[0], warp, cycle)
    nbytes = access_bytes(instr)
    row_bytes, stride = _row_layout(instr, nbytes)
    data_ops = [op for op in _source_operands(instr) if isinstance(op, RegisterOperand)]
    fragment = ex._eval(data_ops[-1], warp, cycle) if data_ops else 0
    dtype = ex.launch.global_memory.dtype_at(address)
    payload = ex._fragment_to_bytes(fragment, dtype, nbytes)
    _scatter_global(ex, address, payload, row_bytes, stride)
    request = MemoryRequest(space="global", address=address, nbytes=nbytes, is_store=True)
    latency = ex._memory_latency(request, instr, cycle)
    outcome.is_memory = True
    outcome.memory_request = request
    outcome.completion_cycle = cycle + latency


def _handle_lds(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    mem_ops = instr.memory_operands()
    offset = ex._address(mem_ops[0], warp, cycle)
    nbytes = access_bytes(instr)
    row_bytes, stride = _row_layout(instr, nbytes)
    request = MemoryRequest(space="shared", address=offset, nbytes=nbytes, is_store=False)
    latency = ex._memory_latency(request, instr, cycle)
    raw = _gather_shared(ex, offset, nbytes, row_bytes, stride)
    fragment = ex._fragment_from_bytes(raw, np.dtype(np.float16))
    ready = cycle + latency
    ex._write_dest(instr, warp, fragment, ready)
    outcome.is_memory = True
    outcome.memory_request = request
    outcome.completion_cycle = ready


def _handle_sts(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    mem_ops = instr.memory_operands()
    offset = ex._address(mem_ops[0], warp, cycle)
    nbytes = access_bytes(instr)
    row_bytes, stride = _row_layout(instr, nbytes)
    data_ops = [op for op in _source_operands(instr) if isinstance(op, RegisterOperand)]
    fragment = ex._eval(data_ops[-1], warp, cycle) if data_ops else 0
    payload = ex._fragment_to_bytes(fragment, np.dtype(np.float16), nbytes)
    _scatter_shared(ex, offset, payload, row_bytes, stride)
    request = MemoryRequest(space="shared", address=offset, nbytes=nbytes, is_store=True)
    latency = ex._memory_latency(request, instr, cycle)
    outcome.is_memory = True
    outcome.memory_request = request
    outcome.completion_cycle = cycle + latency


def _handle_ldgsts(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    mem_ops = instr.memory_operands()
    if len(mem_ops) < 2:
        raise ExecutionError(f"LDGSTS needs a shared and a global address: {instr.render()}")
    shared_offset = ex._address(mem_ops[0], warp, cycle)
    global_address = ex._address(mem_ops[1], warp, cycle)
    nbytes = access_bytes(instr)
    row_bytes, stride = _row_layout(instr, nbytes)
    raw = _gather_global(ex, global_address, nbytes, row_bytes, stride)
    ex.shared.write_bytes(shared_offset, raw)
    request = MemoryRequest(space="async_copy", address=global_address, nbytes=nbytes, is_store=False)
    latency = ex._memory_latency(request, instr, cycle)
    outcome.is_memory = True
    outcome.memory_request = request
    outcome.completion_cycle = cycle + latency


def _handle_bra(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    target = None
    for op in instr.operands:
        if isinstance(op, LabelOperand):
            target = op.name
    if target is None or target not in ex.labels:
        raise ExecutionError(f"branch to unknown label in {instr.render()}")
    warp.pc = ex.labels[target] + 1
    outcome.branched = True
    outcome.completion_cycle = cycle + 2


def _handle_exit(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    warp.finished = True
    outcome.exited = True


def _handle_bar(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    outcome.hit_block_barrier = True
    outcome.completion_cycle = cycle + execution_latency(instr.opcode)


def _handle_nop(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    outcome.completion_cycle = cycle + 1


def _handle_depbar(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    # DEPBAR / LDGDEPBAR: wait for outstanding scoreboard slots named in the
    # wait mask (already handled) plus the slot operand if present.
    outcome.completion_cycle = cycle + 2


def _handle_cs2r(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    value = ex._eval(_source_operands(instr)[0], warp, cycle)
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_redux(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    """Row-wise reduction of a fragment.

    ``REDUX.MAX Rd, Rs, 0x40`` reduces every row of length 0x40 in the source
    fragment; a row length of 0 (or omitted) reduces the whole fragment to a
    scalar.  Supported modifiers: MAX, MIN, ADD.
    """
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    fragment = np.asarray(srcs[0], dtype=np.float32).reshape(-1)
    row = _as_int(srcs[1]) if len(srcs) > 1 else 0
    mods = _modifiers(instr)
    if row and fragment.size % row == 0 and fragment.size > row:
        grid = fragment.reshape(-1, row)
        axis = 1
    else:
        grid = fragment.reshape(1, -1)
        axis = 1
    if "ADD" in mods or "SUM" in mods:
        value = grid.sum(axis=axis)
    elif "MIN" in mods:
        value = grid.min(axis=axis)
    else:
        value = grid.max(axis=axis)
    if value.size == 1:
        value = np.float32(value[0])
    ex._write_dest(instr, warp, value, _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


def _handle_fbcast(ex: ReferenceWarpExecutor, instr, warp, cycle, outcome) -> None:
    """Row-broadcast arithmetic: combine a fragment with a per-row vector.

    ``FBCAST.SUB Rd, Rfrag, Rrow, 0x40`` computes ``frag[i, :] op row[i]`` for
    rows of length 0x40.  Supported modifiers: ADD, SUB, MUL, DIV.
    """
    srcs = [ex._eval(op, warp, cycle) for op in _source_operands(instr)]
    fragment = np.asarray(srcs[0], dtype=np.float32).reshape(-1)
    rowvec = np.asarray(srcs[1], dtype=np.float32).reshape(-1)
    row = _as_int(srcs[2]) if len(srcs) > 2 else fragment.size
    row = row or fragment.size
    if fragment.size < row or fragment.size % row:
        # A scalar (or not-yet-materialised) fragment broadcasts to the full
        # (rows, row) tile implied by the per-row vector.
        fragment = np.full(max(rowvec.size, 1) * row, fragment.reshape(-1)[0], dtype=np.float32)
    grid = fragment.reshape(-1, row)
    col = rowvec.reshape(-1, 1) if rowvec.size == grid.shape[0] else rowvec.reshape(1, -1)
    mods = _modifiers(instr)
    if "SUB" in mods:
        value = grid - col
    elif "MUL" in mods:
        value = grid * col
    elif "DIV" in mods:
        value = grid / np.where(col == 0, np.float32(1.0), col)
    else:
        value = grid + col
    ex._write_dest(instr, warp, value.reshape(-1), _fixed_ready(instr, cycle))
    outcome.completion_cycle = _fixed_ready(instr, cycle)


_HANDLERS = {
    "MOV": _handle_mov,
    "UMOV": _handle_mov,
    "S2R": _handle_s2r,
    "CS2R": _handle_cs2r,
    "IMAD": _handle_imad,
    "UIMAD": _handle_imad,
    "IADD3": _handle_iadd3,
    "UIADD3": _handle_iadd3,
    "IABS": _handle_iabs,
    "LEA": _handle_lea,
    "ULEA": _handle_lea,
    "SHF": _handle_shf,
    "USHF": _handle_shf,
    "SHL": _handle_shf,
    "SHR": _handle_shf,
    "LOP3": _handle_lop3,
    "ULOP3": _handle_lop3,
    "ISETP": _handle_isetp,
    "IMNMX": _handle_imnmx,
    "SEL": _handle_sel,
    "USEL": _handle_sel,
    "FSEL": _handle_sel,
    "FADD": _binary_float(lambda a, b: a + b),
    "FMUL": _binary_float(lambda a, b: a * b),
    "HADD2": _binary_float(lambda a, b: a + b),
    "HMUL2": _binary_float(lambda a, b: a * b),
    "FFMA": _handle_ffma,
    "HFMA2": _handle_ffma,
    "FMNMX": _handle_fmnmx,
    "HMNMX2": _handle_fmnmx,
    "MUFU": _handle_mufu,
    "I2F": _handle_convert,
    "F2I": _handle_convert,
    "F2F": _handle_convert,
    "I2I": _handle_convert,
    "HMMA": _handle_hmma,
    "IMMA": _handle_hmma,
    "REDUX": _handle_redux,
    "FBCAST": _handle_fbcast,
    "LDG": _handle_ldg,
    "LDL": _handle_ldg,
    "LDC": _handle_ldg,
    "STG": _handle_stg,
    "STL": _handle_stg,
    "LDS": _handle_lds,
    "LDSM": _handle_lds,
    "STS": _handle_sts,
    "LDGSTS": _handle_ldgsts,
    "BRA": _handle_bra,
    "EXIT": _handle_exit,
    "RET": _handle_exit,
    "BAR": _handle_bar,
    "WARPSYNC": _handle_nop,
    "NOP": _handle_nop,
    "DEPBAR": _handle_depbar,
    "LDGDEPBAR": _handle_depbar,
    "MEMBAR": _handle_depbar,
    "YIELD": _handle_nop,
}
