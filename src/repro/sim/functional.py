"""Probabilistic testing (§4.1 of the paper).

``@cuasmrl.jit(ret_ptr=...)`` marks which kernel argument is the output
buffer.  Probabilistic testing generates randomized inputs, runs both the
candidate SASS schedule and a trusted reference (the original ``-O3``
schedule or a numpy oracle), and compares the outputs.  Formal verification
is impossible for SASS (no official semantics) and exhaustive testing is
intractable, so this sanity check plus the manual move inspection of §5.7 is
what the paper relies on — and what the reproduction implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import VerificationError
from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator
from repro.sim.launch import GridConfig
from repro.utils.rng import as_rng


@dataclass
class ProbabilisticTestResult:
    """Outcome of one probabilistic-testing round."""

    passed: bool
    max_abs_error: float
    mean_abs_error: float
    trials: int
    message: str = ""


def compare_outputs(
    candidate: np.ndarray,
    reference: np.ndarray,
    *,
    rtol: float = 2e-2,
    atol: float = 2e-2,
) -> tuple[bool, float, float]:
    """Compare two output tensors with fp16-friendly tolerances."""
    cand = np.asarray(candidate, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if cand.shape != ref.shape:
        return False, float("inf"), float("inf")
    abs_err = np.abs(cand - ref)
    denom = np.maximum(np.abs(ref), 1.0)
    rel_err = abs_err / denom
    passed = bool(np.all((abs_err <= atol) | (rel_err <= rtol)))
    return passed, float(abs_err.max(initial=0.0)), float(abs_err.mean()) if abs_err.size else 0.0


@dataclass
class ProbabilisticTester:
    """Runs randomized-input comparisons between a SASS kernel and a reference.

    Parameters
    ----------
    simulator:
        The GPU simulator to execute SASS on.
    input_factory:
        ``(rng) -> dict[name, np.ndarray]`` producing randomized input
        tensors (and zero-initialized outputs).
    reference:
        ``(inputs) -> dict[name, np.ndarray]`` numpy oracle producing the
        expected values of the output tensors.
    grid / param_order / scalars / output_names:
        Launch description of the kernel under test.
    """

    simulator: GPUSimulator
    input_factory: Callable[[np.random.Generator], dict[str, np.ndarray]]
    reference: Callable[[dict[str, np.ndarray]], dict[str, np.ndarray]]
    grid: GridConfig
    param_order: list[str]
    scalars: dict[str, int] = field(default_factory=dict)
    output_names: list[str] = field(default_factory=list)
    rtol: float = 2e-2
    atol: float = 2e-2

    def run(self, kernel: SassKernel, *, trials: int = 2, seed: int = 0) -> ProbabilisticTestResult:
        """Run ``trials`` randomized comparisons; raise nothing, report result."""
        rng = as_rng(seed)
        worst_max = 0.0
        worst_mean = 0.0
        for trial in range(max(trials, 1)):
            inputs = self.input_factory(rng)
            expected = self.reference(inputs)
            run = self.simulator.run(
                kernel,
                self.grid,
                inputs,
                self.param_order,
                scalars=self.scalars,
                output_names=self.output_names or list(expected.keys()),
            )
            for name, ref in expected.items():
                if name not in run.outputs:
                    return ProbabilisticTestResult(
                        passed=False,
                        max_abs_error=float("inf"),
                        mean_abs_error=float("inf"),
                        trials=trial + 1,
                        message=f"kernel did not produce output {name!r}",
                    )
                ok, max_err, mean_err = compare_outputs(
                    run.outputs[name], ref, rtol=self.rtol, atol=self.atol
                )
                worst_max = max(worst_max, max_err)
                worst_mean = max(worst_mean, mean_err)
                if not ok:
                    return ProbabilisticTestResult(
                        passed=False,
                        max_abs_error=max_err,
                        mean_abs_error=mean_err,
                        trials=trial + 1,
                        message=f"output {name!r} mismatch (max abs err {max_err:.4g})",
                    )
        return ProbabilisticTestResult(
            passed=True,
            max_abs_error=worst_max,
            mean_abs_error=worst_mean,
            trials=max(trials, 1),
        )

    def check(self, kernel: SassKernel, *, trials: int = 2, seed: int = 0) -> None:
        """Like :meth:`run` but raises :class:`VerificationError` on failure."""
        result = self.run(kernel, trials=trials, seed=seed)
        if not result.passed:
            raise VerificationError(result.message or "probabilistic testing failed")
