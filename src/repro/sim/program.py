"""Decoded-program layer: per-kernel precomputation for the simulators.

Every candidate measurement in the assembly game replays the same static
instructions thousands of times, and the simulators used to re-derive the
same facts on every dynamic issue: skip labels around the pc, rebuild the
read/write register frozensets, re-split the opcode to find the handler and
the tensor/memory classification.  This module computes all of it exactly
once per *static* instruction and once per *kernel*:

* :class:`DecodedInstr` — everything the issue loop needs about one
  instruction: the bound opcode handler, sorted read registers, the
  ``.reuse``-flagged operand registers, the written-register set, wait mask /
  stall / barrier fields of the control code, and the memory / tensor-core
  classification.  Records are cached on the (immutable) instruction object
  itself, so the mutated schedules of a search — which share almost all
  instruction objects with their parent — decode almost for free.
* :class:`DecodedProgram` — the per-kernel view: label positions, a
  ``next_instr_pc`` table with labels pre-skipped (what ``_peek`` used to do
  per issued instruction) and the decoded record per listing index.

Programs are cached in a digest-keyed, LRU-bounded module table shared by
every simulator in the process (and additionally pinned on the kernel object
for identity-level hits).  The cache is thread-safe: threaded measurement
backends decode concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import SassKernel
from repro.sass.operands import RegisterOperand
from repro.sim.executor import compile_instruction, compiled_predicate

#: Tensor-core opcodes throttled by the HMMA issue interval (see sm.py).
TENSOR_OPCODES = frozenset({"HMMA", "IMMA"})

#: Default bound of the module-level decoded-program LRU.
DEFAULT_PROGRAM_CACHE_SIZE = 256


@dataclass(frozen=True, slots=True)
class DecodedInstr:
    """Issue-loop metadata of one static instruction, computed once."""

    instr: Instruction
    #: Compiled per-instruction handler closure, or ``None`` for unmodelled
    #: opcodes (the executor raises only when such an instruction actually
    #: executes un-predicated, exactly like the dict-dispatch path did).
    handler: Callable | None
    #: Compiled guard-predicate accessor, or ``None`` when unguarded.
    predicate_fn: Callable | None
    #: Sorted general-purpose registers read (operand-collector fetch set).
    read_regs: tuple[int, ...]
    #: Sorted registers carrying the ``.reuse`` flag.
    reuse_regs: tuple[int, ...]
    #: Registers written (reuse-cache invalidation set).
    written_regs: frozenset[int]
    #: Scoreboard slots waited on before issue.
    wait_mask: tuple[int, ...]
    stall: int
    read_barrier: int | None
    write_barrier: int | None
    is_memory: bool
    is_tensor: bool
    base_opcode: str


def decode_instruction(instr: Instruction) -> DecodedInstr:
    """Decode one instruction, caching the record on the instruction object."""
    cached = instr.__dict__.get("_cached_decoded")
    if cached is not None:
        return cached
    control = instr.control
    base = instr.base_opcode
    record = DecodedInstr(
        instr=instr,
        handler=compile_instruction(instr),
        predicate_fn=compiled_predicate(instr),
        read_regs=tuple(sorted(instr.read_registers())),
        reuse_regs=tuple(
            sorted(
                op.index
                for op in instr.operands
                if isinstance(op, RegisterOperand) and op.reuse and not op.is_rz
            )
        ),
        written_regs=instr.written_registers(),
        wait_mask=tuple(sorted(control.wait_mask)),
        stall=control.stall,
        read_barrier=control.read_barrier,
        write_barrier=control.write_barrier,
        is_memory=instr.is_memory,
        is_tensor=base in TENSOR_OPCODES,
        base_opcode=base,
    )
    return instr._cache("_cached_decoded", record)


@dataclass(frozen=True, slots=True)
class DecodedProgram:
    """Per-kernel precomputation shared by every simulation of the kernel."""

    lines: tuple
    num_lines: int
    #: Label name -> listing index (branch targets).
    label_positions: dict
    #: ``next_instr_pc[pc]`` is the listing index of the first instruction at
    #: or after ``pc`` (labels pre-skipped), or ``num_lines`` when none is
    #: left.  Length ``num_lines + 1`` so ``pc == num_lines`` is a valid key.
    next_instr_pc: tuple[int, ...]
    #: Decoded record per listing index (``None`` on label lines).
    decoded: tuple


def build_program_from_lines(lines) -> DecodedProgram:
    """Uncached decode of a bare line sequence.

    For callers that construct a :class:`~repro.sim.executor.WarpExecutor`
    directly from lines, without a kernel to key the digest cache on.  The
    per-instruction records still hit their caches on the instruction objects.
    """
    lines = tuple(lines)
    num_lines = len(lines)
    label_positions = {
        line.name: i for i, line in enumerate(lines) if isinstance(line, Label)
    }
    next_instr = [num_lines] * (num_lines + 1)
    for i in range(num_lines - 1, -1, -1):
        next_instr[i] = i if isinstance(lines[i], Instruction) else next_instr[i + 1]
    decoded = tuple(
        decode_instruction(line) if isinstance(line, Instruction) else None
        for line in lines
    )
    return DecodedProgram(
        lines=lines,
        num_lines=num_lines,
        label_positions=label_positions,
        next_instr_pc=tuple(next_instr),
        decoded=decoded,
    )


_CACHE: OrderedDict[str, DecodedProgram] = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_MAX = DEFAULT_PROGRAM_CACHE_SIZE
_HITS = 0
_MISSES = 0


def decode_program(kernel: SassKernel) -> DecodedProgram:
    """The decoded program of ``kernel``, from cache when possible.

    Lookup is two-level: an identity hit on the kernel object costs one
    attribute read; otherwise the digest-keyed LRU is consulted (two kernel
    objects with the same listing share one program) and the result is pinned
    on the kernel for next time.  Kernel objects are immutable-by-replacement,
    so both levels are sound.
    """
    global _HITS, _MISSES
    # Identity fast path: one attribute read, no lock — this runs once per
    # candidate measurement.  ``hits``/``misses`` count digest-cache traffic.
    cached = kernel.__dict__.get("_decoded_program")
    if cached is not None:
        return cached
    digest = kernel.content_digest()
    with _CACHE_LOCK:
        program = _CACHE.get(digest)
        if program is not None:
            _CACHE.move_to_end(digest)
            _HITS += 1
    if program is None:
        program = build_program_from_lines(kernel.lines)
        with _CACHE_LOCK:
            _MISSES += 1
            _CACHE[digest] = program
            _CACHE.move_to_end(digest)
            while len(_CACHE) > _CACHE_MAX:
                _CACHE.popitem(last=False)
    kernel._decoded_program = program
    return program


def decoded_program_cache_info() -> dict:
    """Counters of the digest-keyed program cache (for tests and benchmarks)."""
    with _CACHE_LOCK:
        return {
            "entries": len(_CACHE),
            "max_entries": _CACHE_MAX,
            "hits": _HITS,
            "misses": _MISSES,
        }


def clear_decoded_program_cache(max_entries: int | None = None) -> None:
    """Empty the program cache (and optionally re-bound it)."""
    global _CACHE_MAX, _HITS, _MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
        if max_entries is not None:
            _CACHE_MAX = int(max_entries)
