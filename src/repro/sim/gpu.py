"""Top-level GPU simulator: kernel launches, CUDA-events-style timing and profiling.

This is the component that replaces the physical A100 in the paper's loop
(Figure 3): the assembly game assembles a mutated schedule, "executes" it
here and receives the measured runtime back as the reward signal.

Two execution modes are provided:

* :meth:`GPUSimulator.run` — functional execution of the *whole grid*,
  producing output tensors (used by probabilistic testing and the examples);
* :meth:`GPUSimulator.measure` — timing simulation of one representative
  thread block scaled by the number of waves, wrapped in the same
  warm-up/repeat protocol as the paper's CUDA-event measurements (§3.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.ampere import A100, AmpereConfig
from repro.errors import LaunchError
from repro.sass.kernel import SassKernel
from repro.sim.launch import GridConfig, LaunchContext, bind_tensors
from repro.sim.memory import GlobalMemory
from repro.sim.profiler import ProfileReport, build_profile
from repro.sim.sm import FunctionalRunner, TimingResult, TimingSimulator


@dataclass(frozen=True)
class KernelTiming:
    """Timing of one kernel launch."""

    kernel_name: str
    block_cycles: int
    waves: int
    total_cycles: int
    time_ms: float
    timing: TimingResult

    @property
    def time_us(self) -> float:
        return self.time_ms * 1e3


@dataclass
class KernelRun:
    """Result of a functional grid execution."""

    kernel_name: str
    outputs: dict[str, np.ndarray]
    dynamic_instructions: int


@dataclass
class MeasurementConfig:
    """CUDA-events-like measurement protocol (§3.6 / §5.1)."""

    warmup_iterations: int = 100
    measure_iterations: int = 100
    #: Relative Gaussian measurement noise; the paper reports run-to-run
    #: standard deviation within 1%, 0 keeps the simulator deterministic.
    noise_std: float = 0.0
    seed: int = 0


class GPUSimulator:
    """A simulated Ampere GPU."""

    def __init__(self, config: AmpereConfig = A100):
        self.config = config

    # ------------------------------------------------------------------
    # Launch helpers
    # ------------------------------------------------------------------
    def _build_launch(
        self,
        kernel: SassKernel,
        grid: GridConfig,
        tensors: dict[str, np.ndarray],
        param_order: list[str],
        scalars: dict[str, int] | None = None,
    ) -> tuple[LaunchContext, dict]:
        memory = GlobalMemory()
        params, allocations = bind_tensors(memory, tensors, param_order, scalars)
        launch = LaunchContext(
            grid_config=grid,
            params=params,
            global_memory=memory,
            shared_memory_bytes=kernel.metadata.shared_memory_bytes,
        )
        return launch, allocations

    def build_launch(
        self,
        grid: GridConfig,
        tensors: dict[str, np.ndarray],
        param_order: list[str],
        scalars: dict[str, int] | None = None,
    ) -> LaunchContext:
        """Bind a workload's tensors once into a reusable launch context.

        The returned launch snapshots its global memory so
        :meth:`measure_with_launch` can measure any number of candidate
        schedules against it — timing simulation resets the simulated device
        *state* (dirtied tensors) between candidates instead of re-uploading
        every input tensor per measurement.
        """
        memory = GlobalMemory()
        params, _ = bind_tensors(memory, tensors, param_order, scalars)
        launch = LaunchContext(
            grid_config=grid,
            params=params,
            global_memory=memory,
            shared_memory_bytes=0,
        )
        memory.snapshot()
        return launch

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def run(
        self,
        kernel: SassKernel,
        grid: GridConfig,
        tensors: dict[str, np.ndarray],
        param_order: list[str],
        scalars: dict[str, int] | None = None,
        output_names: list[str] | None = None,
    ) -> KernelRun:
        """Execute the whole grid functionally and return the output tensors."""
        launch, allocations = self._build_launch(kernel, grid, tensors, param_order, scalars)
        runner = FunctionalRunner(kernel, launch)
        dynamic = runner.run_grid()
        output_names = output_names or list(tensors.keys())
        outputs = {}
        for name in output_names:
            if name not in allocations:
                raise LaunchError(f"unknown output tensor {name!r}")
            outputs[name] = launch.global_memory.download(allocations[name])
        return KernelRun(kernel_name=kernel.metadata.name, outputs=outputs, dynamic_instructions=dynamic)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def occupancy_waves(self, kernel: SassKernel, grid: GridConfig) -> int:
        """Number of waves needed to run the grid across all SMs."""
        return max(1, math.ceil(grid.num_blocks / self.config.num_sms))

    def time_block(
        self,
        kernel: SassKernel,
        grid: GridConfig,
        tensors: dict[str, np.ndarray],
        param_order: list[str],
        scalars: dict[str, int] | None = None,
    ) -> TimingResult:
        """Timing-simulate one representative thread block."""
        launch, _ = self._build_launch(kernel, grid, tensors, param_order, scalars)
        simulator = TimingSimulator(kernel, launch, self.config)
        return simulator.run_block((0, 0, 0))

    def measure(
        self,
        kernel: SassKernel,
        grid: GridConfig,
        tensors: dict[str, np.ndarray],
        param_order: list[str],
        scalars: dict[str, int] | None = None,
        measurement: MeasurementConfig | None = None,
    ) -> KernelTiming:
        """Measure kernel runtime with the CUDA-events protocol.

        The simulator is deterministic, so the warm-up/repeat loop of the
        paper collapses to a single cycle-accurate measurement plus optional
        synthetic measurement noise.

        The noise stream is derived from ``(measurement.seed, schedule)``:
        distinct schedules see independent noise realizations (so ``noise_std``
        actually perturbs candidate rankings), while re-measuring the same
        schedule under the same seed reproduces the same value.
        """
        launch = self.build_launch(grid, tensors, param_order, scalars)
        return self.measure_with_launch(kernel, launch, measurement=measurement)

    def time_block_with_launch(
        self,
        kernel: SassKernel,
        launch: LaunchContext,
        ctaid: tuple[int, int, int] = (0, 0, 0),
    ) -> TimingResult:
        """Timing-simulate one block against a reusable (pre-bound) launch.

        The launch's global memory is restored to its snapshot first, so the
        result is bit-identical to timing the kernel on a freshly bound
        launch regardless of what earlier measurements stored.
        """
        launch.global_memory.restore()
        launch.shared_memory_bytes = kernel.metadata.shared_memory_bytes
        simulator = TimingSimulator(kernel, launch, self.config)
        return simulator.run_block(ctaid)

    def measure_with_launch(
        self,
        kernel: SassKernel,
        launch: LaunchContext,
        measurement: MeasurementConfig | None = None,
    ) -> KernelTiming:
        """Measure a candidate schedule against a reusable launch context.

        This is the hot path of the assembly game: one
        :meth:`build_launch` per workload, one call here per candidate.
        """
        measurement = measurement or MeasurementConfig()
        timing = self.time_block_with_launch(kernel, launch)
        waves = self.occupancy_waves(kernel, launch.grid_config)
        total_cycles = timing.cycles * waves
        time_ms = self.config.cycles_to_ms(total_cycles)
        if measurement.noise_std > 0:
            schedule_stream = int(kernel.content_digest()[:16], 16)
            rng = np.random.default_rng([int(measurement.seed), schedule_stream])
            samples = time_ms * (
                1.0 + measurement.noise_std * rng.standard_normal(measurement.measure_iterations)
            )
            time_ms = float(np.mean(np.maximum(samples, 0.0)))
        return KernelTiming(
            kernel_name=kernel.metadata.name,
            block_cycles=timing.cycles,
            waves=waves,
            total_cycles=total_cycles,
            time_ms=time_ms,
            timing=timing,
        )

    def profile(
        self,
        kernel: SassKernel,
        grid: GridConfig,
        tensors: dict[str, np.ndarray],
        param_order: list[str],
        scalars: dict[str, int] | None = None,
    ) -> ProfileReport:
        """Nsight-Compute-like profile of the kernel (Table 3 / Figures 10-11)."""
        timing = self.time_block(kernel, grid, tensors, param_order, scalars)
        return build_profile(kernel.metadata.name, timing, config=self.config)
