"""Warp-level SASS executor: functional semantics with timing-aware visibility.

The executor implements the semantics of the SASS subset emitted by the
mini-Triton backend at *warp-tile granularity*: a general-purpose register
holds either an integer scalar (addresses, loop counters) or a numpy array —
the fragment of a tile the warp owns.  This keeps register-level data
dependencies exactly as in real SASS (which is what the scheduling problem is
about) while making functional verification tractable in pure Python.

Crucially, register visibility is *timing aware*: a write becomes visible
``latency`` cycles after issue, and a read that happens earlier observes the
previous (stale) value.  This is how real Ampere hardware behaves for
fixed-latency instructions whose stall counts are too small, it is what makes
the dependency-based microbenchmarks of §4.3 work, and it is how probabilistic
testing catches schedules that violate dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.latency_table import execution_latency
from repro.errors import ExecutionError
from repro.sass.instruction import Instruction
from repro.sass.operands import (
    ConstantMemoryOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    PredicateOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    UniformRegisterOperand,
)
from repro.sim.launch import LaunchContext
from repro.sim.memory import MemoryRequest, SharedMemory

#: Bytes moved per warp for a global/shared access, keyed by width modifier.
#: ``256`` (1 KiB per warp) models a pair of back-to-back 128-bit accesses
#: that real kernels issue as two instructions; see DESIGN.md.
_WIDTH_BYTES = {"256": 1024, "128": 512, "64": 256, "32": 128, "16": 64}
_DEFAULT_ACCESS_BYTES = 512


def access_bytes(instr: Instruction) -> int:
    """Bytes moved per warp by a memory instruction (from its width modifier)."""
    for mod in instr.modifiers:
        if mod in _WIDTH_BYTES:
            return _WIDTH_BYTES[mod]
    return _DEFAULT_ACCESS_BYTES


@dataclass(slots=True)
class _Slot:
    """A register slot: current value, when it becomes visible, and the stale value."""

    value: object = 0
    ready: int = 0
    stale: object = 0

    def read(self, cycle: int):
        return self.value if cycle >= self.ready else self.stale

    def write(self, value, ready: int) -> None:
        self.stale = self.value
        self.value = value
        self.ready = ready


class RegisterFile:
    """Timing-aware storage for one warp's registers / predicates / uniforms."""

    def __init__(self) -> None:
        self._regs: dict[int, _Slot] = {}
        self._preds: dict[int, _Slot] = {}
        self._uregs: dict[int, _Slot] = {}

    def _slot(self, table: dict[int, _Slot], index: int) -> _Slot:
        slot = table.get(index)
        if slot is None:
            slot = _Slot()
            table[index] = slot
        return slot

    # registers -------------------------------------------------------
    def read_reg(self, index: int, cycle: int):
        return self._slot(self._regs, index).read(cycle)

    def write_reg(self, index: int, value, ready: int) -> None:
        self._slot(self._regs, index).write(value, ready)

    def reg_ready(self, index: int) -> int:
        return self._slot(self._regs, index).ready

    # predicates ------------------------------------------------------
    def read_pred(self, index: int, cycle: int) -> bool:
        return bool(self._slot(self._preds, index).read(cycle))

    def write_pred(self, index: int, value: bool, ready: int) -> None:
        self._slot(self._preds, index).write(bool(value), ready)

    # uniform registers ------------------------------------------------
    def read_ureg(self, index: int, cycle: int):
        return self._slot(self._uregs, index).read(cycle)

    def write_ureg(self, index: int, value, ready: int) -> None:
        self._slot(self._uregs, index).write(value, ready)


@dataclass
class WarpState:
    """Mutable per-warp execution state."""

    warp_id: int
    ctaid: tuple[int, int, int]
    registers: RegisterFile = field(default_factory=RegisterFile)
    #: Listing index of the next line to execute.
    pc: int = 0
    #: Earliest cycle at which the warp may issue its next instruction.
    next_issue: int = 0
    #: Scoreboard: slot index -> cycle at which the barrier clears.
    scoreboard: dict[int, int] = field(default_factory=dict)
    finished: bool = False
    waiting_at_barrier: bool = False
    #: dynamic instruction count (profiling)
    issued: int = 0

    def barrier_clear_cycle(self, wait_mask) -> int:
        """Cycle at which every scoreboard slot in ``wait_mask`` is clear."""
        return max((self.scoreboard.get(slot, 0) for slot in wait_mask), default=0)

    def set_barrier(self, slot: int, clear_cycle: int) -> None:
        self.scoreboard[slot] = max(self.scoreboard.get(slot, 0), clear_cycle)


@dataclass(slots=True)
class StepOutcome:
    """What happened when one instruction was issued."""

    instruction: Instruction
    issue_cycle: int
    completion_cycle: int
    is_memory: bool = False
    memory_request: MemoryRequest | None = None
    branched: bool = False
    exited: bool = False
    hit_block_barrier: bool = False
    predicated_off: bool = False


class WarpExecutor:
    """Executes instructions for warps of a single thread block.

    The executor is driver-agnostic: both the sequential functional runner and
    the SM timing simulator call :meth:`step` with an issue cycle they chose,
    and the executor updates the warp state, performs the architectural
    effects and reports latency/completion information back.
    """

    def __init__(
        self,
        lines,
        launch: LaunchContext,
        shared: SharedMemory,
        *,
        label_positions: dict[str, int],
        memory_latency=None,
        program=None,
    ) -> None:
        self.lines = lines
        self.launch = launch
        self.shared = shared
        self.labels = label_positions
        #: Callable (MemoryRequest, issue_cycle) -> latency; defaults to a
        #: fixed latency per opcode class when no timing model is attached.
        self.memory_latency = memory_latency
        #: The :class:`repro.sim.program.DecodedProgram` driving :meth:`step`:
        #: labels are skipped through the precomputed pc table and execution
        #: dispatches through per-instruction compiled handlers instead of
        #: re-scanning the listing and re-splitting opcodes per issue.  The
        #: simulators pass their kernel's cached program; direct construction
        #: from bare lines decodes one ad hoc.
        if program is None:
            # Deferred import: program.py imports this module at load time.
            from repro.sim.program import build_program_from_lines

            program = build_program_from_lines(lines)
        self.program = program

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------
    def _eval(self, operand: Operand, warp: WarpState, cycle: int):
        if isinstance(operand, RegisterOperand):
            if operand.is_rz:
                value = 0
            else:
                value = warp.registers.read_reg(operand.index, cycle)
            return self._apply_modifiers(value, operand)
        if isinstance(operand, UniformRegisterOperand):
            return 0 if operand.is_urz else warp.registers.read_ureg(operand.index, cycle)
        if isinstance(operand, PredicateOperand):
            value = True if operand.is_pt else warp.registers.read_pred(operand.index, cycle)
            return (not value) if operand.negated else value
        if isinstance(operand, ImmediateOperand):
            return operand.value
        if isinstance(operand, ConstantMemoryOperand):
            return self.launch.constant(operand.bank, operand.offset)
        if isinstance(operand, SpecialRegisterOperand):
            return self._special_register(operand.name, warp, cycle)
        if isinstance(operand, MemoryOperand):
            return self._address(operand, warp, cycle)
        if isinstance(operand, LabelOperand):
            return operand.name
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    @staticmethod
    def _apply_modifiers(value, operand: RegisterOperand):
        if operand.absolute:
            value = np.abs(value) if isinstance(value, np.ndarray) else abs(value)
        if operand.negated:
            value = -value
        return value

    def _special_register(self, name: str, warp: WarpState, cycle: int):
        ctaid_x, ctaid_y, ctaid_z = warp.ctaid
        mapping = {
            "SR_CTAID.X": ctaid_x,
            "SR_CTAID.Y": ctaid_y,
            "SR_CTAID.Z": ctaid_z,
            "SR_TID.X": warp.warp_id * 32,
            "SR_TID.Y": 0,
            "SR_TID.Z": 0,
            "SR_LANEID": 0,
            "SR_CLOCKLO": cycle,
            "SR_CLOCKHI": 0,
            "SR_WARPID": warp.warp_id,
        }
        if name in mapping:
            return mapping[name]
        raise ExecutionError(f"unmodelled special register {name}")

    def _address(self, operand: MemoryOperand, warp: WarpState, cycle: int) -> int:
        address = operand.offset
        if operand.base is not None and not operand.base.is_rz:
            address += int(warp.registers.read_reg(operand.base.index, cycle))
        if operand.uniform_base is not None and not operand.uniform_base.is_urz:
            address += int(warp.registers.read_ureg(operand.uniform_base.index, cycle))
        return int(address)

    # ------------------------------------------------------------------
    # The main step function
    # ------------------------------------------------------------------
    def step(self, warp: WarpState, issue_cycle: int) -> StepOutcome:
        """Issue the instruction at ``warp.pc`` at ``issue_cycle``."""
        program = self.program
        # Label skipping and control/handler metadata come from the decoded
        # program instead of per-issue recomputation.
        pc = program.next_instr_pc[warp.pc]
        if pc >= program.num_lines:
            warp.finished = True
            return StepOutcome(
                instruction=Instruction("EXIT"),
                issue_cycle=issue_cycle,
                completion_cycle=issue_cycle,
                exited=True,
            )
        warp.pc = pc
        rec = program.decoded[pc]
        instr: Instruction = rec.instr
        wait_mask = rec.wait_mask
        stall = rec.stall
        predicate_fn = rec.predicate_fn
        handler = rec.handler
        write_barrier = rec.write_barrier
        read_barrier = rec.read_barrier

        # Wait barriers stall the issue until the scoreboard slots clear.
        if wait_mask:
            issue_cycle = max(issue_cycle, warp.barrier_clear_cycle(wait_mask))

        warp.issued += 1
        outcome = StepOutcome(instruction=instr, issue_cycle=issue_cycle, completion_cycle=issue_cycle)

        # Guard predicate: a predicated-off instruction still occupies the
        # issue slot (and its stall count) but has no architectural effect.
        if predicate_fn is not None:
            if not predicate_fn(self, warp, issue_cycle):
                outcome.predicated_off = True
                warp.pc += 1
                warp.next_issue = issue_cycle + (stall if stall > 1 else 1)
                return outcome

        if handler is None:
            raise ExecutionError(f"unmodelled opcode {instr.opcode!r}")
        handler(self, warp, issue_cycle, outcome)

        if not outcome.branched and not outcome.exited:
            warp.pc += 1
        warp.next_issue = issue_cycle + (stall if stall > 1 else 1)

        # Scoreboard barriers set by this instruction.
        if write_barrier is not None:
            warp.set_barrier(write_barrier, outcome.completion_cycle)
        if read_barrier is not None:
            # Source operands are consumed a few cycles after issue (the
            # request leaves the register file for the LSU).
            warp.set_barrier(read_barrier, issue_cycle + 10)
        return outcome

    # ------------------------------------------------------------------
    # Memory helpers
    # ------------------------------------------------------------------
    def _memory_latency(self, request: MemoryRequest, instr: Instruction, issue_cycle: int) -> int:
        if self.memory_latency is not None:
            return self.memory_latency(request, issue_cycle)
        return execution_latency(instr.opcode)

    def _fragment_from_bytes(self, raw: np.ndarray, dtype: np.dtype) -> np.ndarray:
        return raw.view(dtype).astype(np.float32)

    def _fragment_to_bytes(self, fragment, dtype: np.dtype, nbytes: int) -> np.ndarray:
        array = np.asarray(fragment, dtype=np.float32).reshape(-1)
        out = array.astype(dtype)
        needed = nbytes // dtype.itemsize
        if out.size < needed:
            out = np.concatenate([out, np.zeros(needed - out.size, dtype=dtype)])
        return out[:needed]




# ---------------------------------------------------------------------------
# Instruction compilation
# ---------------------------------------------------------------------------
# Every static instruction is compiled once into a closure
# ``handler(ex, warp, issue_cycle, outcome)`` capturing everything knowable
# before execution: operand accessors, destination writers, result latency,
# modifier decisions (shift direction, compare function, MMA shape, memory
# access geometry).  The dynamic residue — register reads, memory traffic,
# predicate values — is exactly the seed handlers' arithmetic, so compiled
# execution is bit-identical to the dict-dispatch engine preserved in
# :mod:`repro.sim._reference_executor`.  Closures are cached on the
# (immutable) instruction objects, so the mutated schedules of a search
# compile almost nothing new.


def _as_int(value) -> int:
    if isinstance(value, np.ndarray):
        return int(value.reshape(-1)[0])
    return int(value)


def _const(value):
    def fn(ex, warp, cycle):
        return value

    return fn


_CONST_ZERO = _const(0)


# ---------------------------------------------------------------------------
# Operand access compilation (mirrors WarpExecutor._eval branch by branch)
# ---------------------------------------------------------------------------
def _compile_register_eval(op: RegisterOperand):
    if op.is_rz:
        # abs(0) / -0 are still 0, so modifiers collapse away.
        return _CONST_ZERO
    index = op.index
    if op.absolute and op.negated:

        def fn(ex, warp, cycle):
            value = warp.registers.read_reg(index, cycle)
            value = np.abs(value) if isinstance(value, np.ndarray) else abs(value)
            return -value

    elif op.absolute:

        def fn(ex, warp, cycle):
            value = warp.registers.read_reg(index, cycle)
            return np.abs(value) if isinstance(value, np.ndarray) else abs(value)

    elif op.negated:

        def fn(ex, warp, cycle):
            return -warp.registers.read_reg(index, cycle)

    else:

        def fn(ex, warp, cycle):
            return warp.registers.read_reg(index, cycle)

    return fn


def _compile_address(op: MemoryOperand):
    """Compiled replica of :meth:`WarpExecutor._address`."""
    offset = op.offset
    base_index = None
    if op.base is not None and not op.base.is_rz:
        base_index = op.base.index
    uniform_index = None
    if op.uniform_base is not None and not op.uniform_base.is_urz:
        uniform_index = op.uniform_base.index

    if base_index is not None and uniform_index is not None:

        def fn(ex, warp, cycle):
            return int(
                offset
                + int(warp.registers.read_reg(base_index, cycle))
                + int(warp.registers.read_ureg(uniform_index, cycle))
            )

    elif base_index is not None:

        def fn(ex, warp, cycle):
            return int(offset + int(warp.registers.read_reg(base_index, cycle)))

    elif uniform_index is not None:

        def fn(ex, warp, cycle):
            return int(offset + int(warp.registers.read_ureg(uniform_index, cycle)))

    else:
        return _const(int(offset))
    return fn


def compile_operand_eval(op: Operand):
    """Compile one operand into an accessor ``fn(ex, warp, cycle) -> value``."""
    kind = type(op)
    if kind is RegisterOperand:
        return _compile_register_eval(op)
    if kind is UniformRegisterOperand:
        if op.is_urz:
            return _CONST_ZERO
        index = op.index

        def fn(ex, warp, cycle):
            return warp.registers.read_ureg(index, cycle)

        return fn
    if kind is PredicateOperand:
        if op.is_pt:
            return _const(not op.negated)
        index = op.index
        if op.negated:

            def fn(ex, warp, cycle):
                return not warp.registers.read_pred(index, cycle)

        else:

            def fn(ex, warp, cycle):
                return warp.registers.read_pred(index, cycle)

        return fn
    if kind is ImmediateOperand:
        return _const(op.value)
    if kind is ConstantMemoryOperand:
        bank, offset = op.bank, op.offset

        def fn(ex, warp, cycle):
            return ex.launch.constant(bank, offset)

        return fn
    if kind is SpecialRegisterOperand:
        name = op.name

        def fn(ex, warp, cycle):
            return ex._special_register(name, warp, cycle)

        return fn
    if kind is MemoryOperand:
        return _compile_address(op)
    if kind is LabelOperand:
        return _const(op.name)

    # Operand subclasses / future types: exact fallback through _eval.
    def fn(ex, warp, cycle):
        return ex._eval(op, warp, cycle)

    return fn


def compiled_predicate(instr: Instruction):
    """Compiled guard-predicate accessor of an instruction (``None`` if unguarded)."""
    if instr.predicate is None:
        return None
    cached = instr.__dict__.get("_cached_predicate_fn")
    if cached is None:
        cached = instr._cache("_cached_predicate_fn", compile_operand_eval(instr.predicate))
    return cached


# ---------------------------------------------------------------------------
# Destination write compilation (mirrors the seed _write_dest)
# ---------------------------------------------------------------------------
def _write_noop(warp, value, ready):
    return None


def _compile_write(instr: Instruction):
    """Compile the destination writes into ``write(warp, value, ready)``."""
    dests = instr.dest_operands()
    writers = []
    if dests:
        dest = dests[0]
        if isinstance(dest, RegisterOperand):
            if not dest.is_rz:
                index = dest.index

                def primary(warp, value, ready, _i=index):
                    warp.registers.write_reg(_i, value, ready)

                writers.append(primary)
        elif isinstance(dest, PredicateOperand):
            if not dest.is_pt:
                index = dest.index

                def primary(warp, value, ready, _i=index):
                    warp.registers.write_pred(_i, bool(value), ready)

                writers.append(primary)
        elif isinstance(dest, UniformRegisterOperand):
            if not dest.is_urz:
                index = dest.index

                def primary(warp, value, ready, _i=index):
                    warp.registers.write_ureg(_i, value, ready)

                writers.append(primary)
        # Secondary destinations (e.g. the second predicate of ISETP, the
        # carry predicate of IADD3.X) are written as "don't care" values.
        for extra in dests[1:]:
            if isinstance(extra, PredicateOperand) and not extra.is_pt:

                def secondary(warp, value, ready, _i=extra.index):
                    warp.registers.write_pred(_i, False, ready)

                writers.append(secondary)
            elif isinstance(extra, RegisterOperand) and not extra.is_rz:

                def secondary(warp, value, ready, _i=extra.index):
                    warp.registers.write_reg(_i, 0, ready)

                writers.append(secondary)
    if not writers:
        return _write_noop
    if len(writers) == 1:
        return writers[0]

    def write_all(warp, value, ready):
        for writer in writers:
            writer(warp, value, ready)

    return write_all


def _source_evals(instr: Instruction) -> tuple:
    return tuple(compile_operand_eval(op) for op in instr.source_operands())


# ---------------------------------------------------------------------------
# Per-opcode compilers
# ---------------------------------------------------------------------------
def _compile_mov(instr: Instruction):
    fn0 = compile_operand_eval(instr.source_operands()[0])
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        value = fn0(ex, warp, cycle)
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


# S2R/CS2R share the mov shape (eval one source, fixed result latency).
_compile_s2r = _compile_mov
_compile_cs2r = _compile_mov


def _compile_imad(instr: Instruction):
    fns = list(_source_evals(instr))
    while len(fns) < 3:
        fns.append(_CONST_ZERO)
    fn_a, fn_b, fn_c = fns[0], fns[1], fns[2]
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        a = fn_a(ex, warp, cycle)
        b = fn_b(ex, warp, cycle)
        c = fn_c(ex, warp, cycle)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) or isinstance(c, np.ndarray):
            value = np.asarray(a) * np.asarray(b) + np.asarray(c)
        else:
            value = _as_int(a) * _as_int(b) + _as_int(c)
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _compile_iadd3(instr: Instruction):
    fns = _source_evals(instr)
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        total = 0
        for fn in fns:
            s = fn(ex, warp, cycle)
            if isinstance(s, bool):
                continue
            total = total + (_as_int(s) if not isinstance(s, np.ndarray) else s)
        ready = cycle + latency
        write(warp, total, ready)
        outcome.completion_cycle = ready

    return run


def _compile_iabs(instr: Instruction):
    fn0 = compile_operand_eval(instr.source_operands()[0])
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        value = fn0(ex, warp, cycle)
        result = np.abs(value) if isinstance(value, np.ndarray) else abs(_as_int(value))
        ready = cycle + latency
        write(warp, result, ready)
        outcome.completion_cycle = ready

    return run


def _compile_lea(instr: Instruction):
    fns = _source_evals(instr)
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        a = _as_int(srcs[0]) if srcs else 0
        b = _as_int(srcs[1]) if len(srcs) > 1 else 0
        shift = _as_int(srcs[2]) if len(srcs) > 2 else 0
        value = b + (a << shift)
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _compile_shf(instr: Instruction):
    fns = _source_evals(instr)
    shift_right = "R" in instr.modifiers
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        a = _as_int(srcs[0]) if srcs else 0
        amount = _as_int(srcs[1]) if len(srcs) > 1 else 0
        value = (a >> amount) if shift_right else (a << amount)
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _compile_lop3(instr: Instruction):
    fns = _source_evals(instr)
    mods = instr.modifiers
    if "OR" in mods:
        logic = 0
    elif "XOR" in mods:
        logic = 1
    else:
        logic = 2
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        ints = [_as_int(s) for s in srcs if not isinstance(s, bool)][:3]
        while len(ints) < 2:
            ints.append(0)
        if logic == 0:
            value = ints[0] | ints[1]
        elif logic == 1:
            value = ints[0] ^ ints[1]
        else:
            value = ints[0] & ints[1]
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


_CMP_FUNCS = {
    "GE": lambda a, b: a >= b,
    "GT": lambda a, b: a > b,
    "LT": lambda a, b: a < b,
    "LE": lambda a, b: a <= b,
    "EQ": lambda a, b: a == b,
    "NE": lambda a, b: a != b,
}


def _compile_isetp(instr: Instruction):
    fns = _source_evals(instr)
    cmp_fn = None
    for mod in instr.modifiers:
        if mod in _CMP_FUNCS:
            cmp_fn = _CMP_FUNCS[mod]
            break
    or_mode = "OR" in instr.modifiers
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        numeric = [s for s in srcs if not isinstance(s, bool)]
        a = _as_int(numeric[0]) if numeric else 0
        b = _as_int(numeric[1]) if len(numeric) > 1 else 0
        result = bool(cmp_fn(a, b)) if cmp_fn is not None else False
        # Combine with the trailing source predicate (".AND" semantics).
        pred_srcs = [s for s in srcs if isinstance(s, bool)]
        if pred_srcs:
            if or_mode:
                result = result or pred_srcs[-1]
            else:
                result = result and pred_srcs[-1]
        ready = cycle + latency
        write(warp, result, ready)
        outcome.completion_cycle = ready

    return run


def _compile_imnmx(instr: Instruction):
    fns = _source_evals(instr)
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        numeric = [s for s in srcs if not isinstance(s, bool)]
        a, b = _as_int(numeric[0]), _as_int(numeric[1])
        use_min = True
        for s in srcs:
            if isinstance(s, bool):
                use_min = s
        value = min(a, b) if use_min else max(a, b)
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _compile_sel(instr: Instruction):
    fns = _source_evals(instr)
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        numeric = [s for s in srcs if not isinstance(s, bool)]
        preds = [s for s in srcs if isinstance(s, bool)]
        a = numeric[0] if numeric else 0
        b = numeric[1] if len(numeric) > 1 else 0
        condition = preds[-1] if preds else True
        value = a if condition else b
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _binary_float(op):
    def compiler(instr: Instruction):
        fns = _source_evals(instr)
        write = _compile_write(instr)
        latency = execution_latency(instr.opcode)

        def run(ex, warp, cycle, outcome):
            srcs = [fn(ex, warp, cycle) for fn in fns]
            numeric = [
                np.asarray(s, dtype=np.float32) for s in srcs if not isinstance(s, bool)
            ]
            a = numeric[0] if numeric else np.float32(0)
            b = numeric[1] if len(numeric) > 1 else np.float32(0)
            value = op(a, b)
            ready = cycle + latency
            write(warp, value, ready)
            outcome.completion_cycle = ready

        return run

    return compiler


def _compile_ffma(instr: Instruction):
    fns = _source_evals(instr)
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        numeric = [np.asarray(s, dtype=np.float32) for s in srcs if not isinstance(s, bool)]
        while len(numeric) < 3:
            numeric.append(np.float32(0))
        value = numeric[0] * numeric[1] + numeric[2]
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _compile_fmnmx(instr: Instruction):
    fns = _source_evals(instr)
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        numeric = [np.asarray(s, dtype=np.float32) for s in srcs if not isinstance(s, bool)]
        preds = [s for s in srcs if isinstance(s, bool)]
        a = numeric[0] if numeric else np.float32(0)
        b = numeric[1] if len(numeric) > 1 else np.float32(0)
        use_min = preds[-1] if preds else True
        value = np.minimum(a, b) if use_min else np.maximum(a, b)
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _mufu_rcp(x):
    return np.where(x != 0, 1.0 / np.where(x == 0, 1.0, x), np.float32(np.inf))


def _mufu_rsq(x):
    return 1.0 / np.sqrt(np.maximum(x, np.float32(1e-30)))


def _mufu_lg2(x):
    return np.log2(np.maximum(x, np.float32(1e-30)))


def _mufu_sqrt(x):
    return np.sqrt(np.maximum(x, np.float32(0)))


def _mufu_identity(x):
    return x


def _compile_mufu(instr: Instruction):
    fn0 = compile_operand_eval(instr.source_operands()[0])
    mods = instr.modifiers
    if "RCP" in mods:
        func = _mufu_rcp
    elif "EX2" in mods:
        func = np.exp2
    elif "LG2" in mods:
        func = _mufu_lg2
    elif "RSQ" in mods:
        func = _mufu_rsq
    elif "SQRT" in mods:
        func = _mufu_sqrt
    else:
        func = _mufu_identity
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        source = fn0(ex, warp, cycle)
        value = func(np.asarray(source, dtype=np.float32))
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _compile_convert(instr: Instruction):
    fn0 = compile_operand_eval(instr.source_operands()[0])
    base = instr.base_opcode
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    if base == "I2F":

        def convert(source):
            if not isinstance(source, np.ndarray):
                return np.float32(_as_int(source))
            return source.astype(np.float32)

    elif base == "F2I":

        def convert(source):
            if not isinstance(source, np.ndarray):
                return int(np.asarray(source, dtype=np.float32))
            return source.astype(np.int64)

    else:  # F2F / I2I: representation changes we do not model numerically

        def convert(source):
            return source

    def run(ex, warp, cycle, outcome):
        value = convert(fn0(ex, warp, cycle))
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _hmma_shapes(instr: Instruction) -> tuple[int, int, int]:
    """Decode the (m, n, k) shape from an HMMA modifier.

    Two encodings are accepted: the explicit ``M_N_K`` form emitted by the
    mini-Triton backend (``HMMA.16_8_16``) and the classic concatenated names
    used in real Ampere listings (``HMMA.16816``).
    """
    known = {"16816": (16, 8, 16), "1688": (16, 8, 8), "884": (8, 8, 4), "161616": (16, 16, 16)}
    for mod in instr.modifiers:
        if "_" in mod:
            parts = mod.split("_")
            if len(parts) == 3 and all(p.isdigit() for p in parts):
                return (int(parts[0]), int(parts[1]), int(parts[2]))
        if mod in known:
            return known[mod]
    return (16, 8, 16)


def _compile_hmma(instr: Instruction):
    m, n, k = _hmma_shapes(instr)
    transpose_b = "TB" in instr.modifiers
    fns = _source_evals(instr)
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        numeric = [np.asarray(s, dtype=np.float32) for s in srcs if not isinstance(s, bool)]
        while len(numeric) < 3:
            numeric.append(np.zeros(1, dtype=np.float32))
        a = _reshape_fragment(numeric[0], (m, k))
        if transpose_b:
            # B fragment stored (n, k) row-major; transpose before the multiply.
            b = _reshape_fragment(numeric[1], (n, k)).T
        else:
            b = _reshape_fragment(numeric[1], (k, n))
        c = _reshape_fragment(numeric[2], (m, n))
        value = (a @ b + c).reshape(-1)
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _reshape_fragment(array: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    needed = shape[0] * shape[1]
    flat = np.asarray(array, dtype=np.float32).reshape(-1)
    if flat.size == needed:
        return flat.reshape(shape)
    if flat.size > needed:
        return flat[:needed].reshape(shape)
    out = np.zeros(needed, dtype=np.float32)
    out[: flat.size] = flat
    return out.reshape(shape)


def _compile_redux(instr: Instruction):
    """Row-wise reduction of a fragment.

    ``REDUX.MAX Rd, Rs, 0x40`` reduces every row of length 0x40 in the source
    fragment; a row length of 0 (or omitted) reduces the whole fragment to a
    scalar.  Supported modifiers: MAX, MIN, ADD.
    """
    fns = _source_evals(instr)
    mods = instr.modifiers
    if "ADD" in mods or "SUM" in mods:
        reduce_kind = 0
    elif "MIN" in mods:
        reduce_kind = 1
    else:
        reduce_kind = 2
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        fragment = np.asarray(srcs[0], dtype=np.float32).reshape(-1)
        row = _as_int(srcs[1]) if len(srcs) > 1 else 0
        if row and fragment.size % row == 0 and fragment.size > row:
            grid = fragment.reshape(-1, row)
        else:
            grid = fragment.reshape(1, -1)
        if reduce_kind == 0:
            value = grid.sum(axis=1)
        elif reduce_kind == 1:
            value = grid.min(axis=1)
        else:
            value = grid.max(axis=1)
        if value.size == 1:
            value = np.float32(value[0])
        ready = cycle + latency
        write(warp, value, ready)
        outcome.completion_cycle = ready

    return run


def _compile_fbcast(instr: Instruction):
    """Row-broadcast arithmetic: combine a fragment with a per-row vector.

    ``FBCAST.SUB Rd, Rfrag, Rrow, 0x40`` computes ``frag[i, :] op row[i]`` for
    rows of length 0x40.  Supported modifiers: ADD, SUB, MUL, DIV.
    """
    fns = _source_evals(instr)
    mods = instr.modifiers
    if "SUB" in mods:
        combine_kind = 0
    elif "MUL" in mods:
        combine_kind = 1
    elif "DIV" in mods:
        combine_kind = 2
    else:
        combine_kind = 3
    write = _compile_write(instr)
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        srcs = [fn(ex, warp, cycle) for fn in fns]
        fragment = np.asarray(srcs[0], dtype=np.float32).reshape(-1)
        rowvec = np.asarray(srcs[1], dtype=np.float32).reshape(-1)
        row = _as_int(srcs[2]) if len(srcs) > 2 else fragment.size
        row = row or fragment.size
        if fragment.size < row or fragment.size % row:
            # A scalar (or not-yet-materialised) fragment broadcasts to the full
            # (rows, row) tile implied by the per-row vector.
            fragment = np.full(max(rowvec.size, 1) * row, fragment.reshape(-1)[0], dtype=np.float32)
        grid = fragment.reshape(-1, row)
        col = rowvec.reshape(-1, 1) if rowvec.size == grid.shape[0] else rowvec.reshape(1, -1)
        if combine_kind == 0:
            value = grid - col
        elif combine_kind == 1:
            value = grid * col
        elif combine_kind == 2:
            value = grid / np.where(col == 0, np.float32(1.0), col)
        else:
            value = grid + col
        ready = cycle + latency
        write(warp, value.reshape(-1), ready)
        outcome.completion_cycle = ready

    return run


# ---------------------------------------------------------------------------
# Memory instruction compilers
# ---------------------------------------------------------------------------
def _row_layout(instr: Instruction, nbytes: int) -> tuple[int, int]:
    """Optional (row_bytes, row_stride) trailing immediates of a memory access.

    Real memory instructions address 32 lanes individually, which lets one
    instruction gather/scatter a strided 2-D tile.  The mini-Triton backend
    encodes that per-lane layout as two trailing immediates; contiguous
    accesses omit them.
    """
    imms = [op for op in instr.operands if isinstance(op, ImmediateOperand) and not op.is_float]
    if len(imms) >= 2:
        row_bytes = int(imms[-2].value)
        row_stride = int(imms[-1].value)
        if 0 < row_bytes <= nbytes and row_stride > 0:
            return row_bytes, row_stride
    return nbytes, nbytes


def _gather_global(ex: WarpExecutor, address: int, nbytes: int, row_bytes: int, stride: int) -> np.ndarray:
    rows = max(1, nbytes // row_bytes)
    if rows == 1:
        return ex.launch.global_memory.read_bytes(address, nbytes)
    chunks = [ex.launch.global_memory.read_bytes(address + r * stride, row_bytes) for r in range(rows)]
    return np.concatenate(chunks)


def _scatter_global(ex: WarpExecutor, address: int, data: np.ndarray, row_bytes: int, stride: int) -> None:
    data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    rows = max(1, len(data) // row_bytes)
    if rows == 1:
        ex.launch.global_memory.write_bytes(address, data)
        return
    for r in range(rows):
        ex.launch.global_memory.write_bytes(address + r * stride, data[r * row_bytes : (r + 1) * row_bytes])


def _gather_shared(ex: WarpExecutor, offset: int, nbytes: int, row_bytes: int, stride: int) -> np.ndarray:
    rows = max(1, nbytes // row_bytes)
    if rows == 1:
        return ex.shared.read_bytes(offset, nbytes)
    chunks = [ex.shared.read_bytes(offset + r * stride, row_bytes) for r in range(rows)]
    return np.concatenate(chunks)


def _scatter_shared(ex: WarpExecutor, offset: int, data: np.ndarray, row_bytes: int, stride: int) -> None:
    data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    rows = max(1, len(data) // row_bytes)
    if rows == 1:
        ex.shared.write_bytes(offset, data)
        return
    for r in range(rows):
        ex.shared.write_bytes(offset + r * stride, data[r * row_bytes : (r + 1) * row_bytes])


def _memory_geometry(instr: Instruction) -> tuple[int, int, int]:
    nbytes = access_bytes(instr)
    row_bytes, stride = _row_layout(instr, nbytes)
    return nbytes, row_bytes, stride


def _compile_ldg(instr: Instruction):
    address_fn = _compile_address(instr.memory_operands()[0])
    nbytes, row_bytes, stride = _memory_geometry(instr)
    write = _compile_write(instr)
    fallback_latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        address = address_fn(ex, warp, cycle)
        request = MemoryRequest(space="global", address=address, nbytes=nbytes, is_store=False)
        model = ex.memory_latency
        latency = model(request, cycle) if model is not None else fallback_latency
        dtype = ex.launch.global_memory.dtype_at(address)
        raw = _gather_global(ex, address, nbytes, row_bytes, stride)
        fragment = raw.view(dtype).astype(np.float32)
        ready = cycle + latency
        write(warp, fragment, ready)
        outcome.is_memory = True
        outcome.memory_request = request
        outcome.completion_cycle = ready

    return run


def _compile_stg(instr: Instruction):
    address_fn = _compile_address(instr.memory_operands()[0])
    nbytes, row_bytes, stride = _memory_geometry(instr)
    data_ops = [op for op in instr.source_operands() if isinstance(op, RegisterOperand)]
    data_fn = compile_operand_eval(data_ops[-1]) if data_ops else _CONST_ZERO
    fallback_latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        address = address_fn(ex, warp, cycle)
        fragment = data_fn(ex, warp, cycle)
        dtype = ex.launch.global_memory.dtype_at(address)
        payload = ex._fragment_to_bytes(fragment, dtype, nbytes)
        _scatter_global(ex, address, payload, row_bytes, stride)
        request = MemoryRequest(space="global", address=address, nbytes=nbytes, is_store=True)
        model = ex.memory_latency
        latency = model(request, cycle) if model is not None else fallback_latency
        outcome.is_memory = True
        outcome.memory_request = request
        outcome.completion_cycle = cycle + latency

    return run


_LDS_DTYPE = np.dtype(np.float16)


def _compile_lds(instr: Instruction):
    address_fn = _compile_address(instr.memory_operands()[0])
    nbytes, row_bytes, stride = _memory_geometry(instr)
    write = _compile_write(instr)
    fallback_latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        offset = address_fn(ex, warp, cycle)
        request = MemoryRequest(space="shared", address=offset, nbytes=nbytes, is_store=False)
        model = ex.memory_latency
        latency = model(request, cycle) if model is not None else fallback_latency
        raw = _gather_shared(ex, offset, nbytes, row_bytes, stride)
        fragment = raw.view(_LDS_DTYPE).astype(np.float32)
        ready = cycle + latency
        write(warp, fragment, ready)
        outcome.is_memory = True
        outcome.memory_request = request
        outcome.completion_cycle = ready

    return run


def _compile_sts(instr: Instruction):
    address_fn = _compile_address(instr.memory_operands()[0])
    nbytes, row_bytes, stride = _memory_geometry(instr)
    data_ops = [op for op in instr.source_operands() if isinstance(op, RegisterOperand)]
    data_fn = compile_operand_eval(data_ops[-1]) if data_ops else _CONST_ZERO
    fallback_latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        offset = address_fn(ex, warp, cycle)
        fragment = data_fn(ex, warp, cycle)
        payload = ex._fragment_to_bytes(fragment, _LDS_DTYPE, nbytes)
        _scatter_shared(ex, offset, payload, row_bytes, stride)
        request = MemoryRequest(space="shared", address=offset, nbytes=nbytes, is_store=True)
        model = ex.memory_latency
        latency = model(request, cycle) if model is not None else fallback_latency
        outcome.is_memory = True
        outcome.memory_request = request
        outcome.completion_cycle = cycle + latency

    return run


def _compile_ldgsts(instr: Instruction):
    mem_ops = instr.memory_operands()
    if len(mem_ops) < 2:
        message = f"LDGSTS needs a shared and a global address: {instr.render()}"

        def fail(ex, warp, cycle, outcome):
            raise ExecutionError(message)

        return fail
    shared_fn = _compile_address(mem_ops[0])
    global_fn = _compile_address(mem_ops[1])
    nbytes, row_bytes, stride = _memory_geometry(instr)
    fallback_latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        shared_offset = shared_fn(ex, warp, cycle)
        global_address = global_fn(ex, warp, cycle)
        raw = _gather_global(ex, global_address, nbytes, row_bytes, stride)
        ex.shared.write_bytes(shared_offset, raw)
        request = MemoryRequest(space="async_copy", address=global_address, nbytes=nbytes, is_store=False)
        model = ex.memory_latency
        latency = model(request, cycle) if model is not None else fallback_latency
        outcome.is_memory = True
        outcome.memory_request = request
        outcome.completion_cycle = cycle + latency

    return run


# ---------------------------------------------------------------------------
# Control flow compilers
# ---------------------------------------------------------------------------
def _compile_bra(instr: Instruction):
    target = None
    for op in instr.operands:
        if isinstance(op, LabelOperand):
            target = op.name
    rendered = instr.render()

    def run(ex, warp, cycle, outcome):
        if target is None or target not in ex.labels:
            raise ExecutionError(f"branch to unknown label in {rendered}")
        warp.pc = ex.labels[target] + 1
        outcome.branched = True
        outcome.completion_cycle = cycle + 2

    return run


def _compile_exit(instr: Instruction):
    def run(ex, warp, cycle, outcome):
        warp.finished = True
        outcome.exited = True

    return run


def _compile_bar(instr: Instruction):
    latency = execution_latency(instr.opcode)

    def run(ex, warp, cycle, outcome):
        outcome.hit_block_barrier = True
        outcome.completion_cycle = cycle + latency

    return run


def _compile_nop(instr: Instruction):
    def run(ex, warp, cycle, outcome):
        outcome.completion_cycle = cycle + 1

    return run


def _compile_depbar(instr: Instruction):
    # DEPBAR / LDGDEPBAR: wait for outstanding scoreboard slots named in the
    # wait mask (already handled) plus the slot operand if present.
    def run(ex, warp, cycle, outcome):
        outcome.completion_cycle = cycle + 2

    return run


_COMPILERS = {
    "MOV": _compile_mov,
    "UMOV": _compile_mov,
    "S2R": _compile_s2r,
    "CS2R": _compile_cs2r,
    "IMAD": _compile_imad,
    "UIMAD": _compile_imad,
    "IADD3": _compile_iadd3,
    "UIADD3": _compile_iadd3,
    "IABS": _compile_iabs,
    "LEA": _compile_lea,
    "ULEA": _compile_lea,
    "SHF": _compile_shf,
    "USHF": _compile_shf,
    "SHL": _compile_shf,
    "SHR": _compile_shf,
    "LOP3": _compile_lop3,
    "ULOP3": _compile_lop3,
    "ISETP": _compile_isetp,
    "IMNMX": _compile_imnmx,
    "SEL": _compile_sel,
    "USEL": _compile_sel,
    "FSEL": _compile_sel,
    "FADD": _binary_float(lambda a, b: a + b),
    "FMUL": _binary_float(lambda a, b: a * b),
    "HADD2": _binary_float(lambda a, b: a + b),
    "HMUL2": _binary_float(lambda a, b: a * b),
    "FFMA": _compile_ffma,
    "HFMA2": _compile_ffma,
    "FMNMX": _compile_fmnmx,
    "HMNMX2": _compile_fmnmx,
    "MUFU": _compile_mufu,
    "I2F": _compile_convert,
    "F2I": _compile_convert,
    "F2F": _compile_convert,
    "I2I": _compile_convert,
    "HMMA": _compile_hmma,
    "IMMA": _compile_hmma,
    "REDUX": _compile_redux,
    "FBCAST": _compile_fbcast,
    "LDG": _compile_ldg,
    "LDL": _compile_ldg,
    "LDC": _compile_ldg,
    "STG": _compile_stg,
    "STL": _compile_stg,
    "LDS": _compile_lds,
    "LDSM": _compile_lds,
    "STS": _compile_sts,
    "LDGSTS": _compile_ldgsts,
    "BRA": _compile_bra,
    "EXIT": _compile_exit,
    "RET": _compile_exit,
    "BAR": _compile_bar,
    "WARPSYNC": _compile_nop,
    "NOP": _compile_nop,
    "DEPBAR": _compile_depbar,
    "LDGDEPBAR": _compile_depbar,
    "MEMBAR": _compile_depbar,
    "YIELD": _compile_nop,
}

_HANDLER_ABSENT = object()


def compile_instruction(instr: Instruction):
    """Compile an instruction into its bound handler (``None`` if unmodelled).

    The closure is cached on the (immutable) instruction; unmodelled opcodes
    cache ``None`` so the executor raises only when such an instruction is
    actually executed un-predicated, like the seed dict dispatch did.  A
    compiler that fails eagerly (e.g. a degenerate operand list whose seed
    handler would have raised at execution) compiles to a closure that
    re-raises the same error at execution time.
    """
    cached = instr.__dict__.get("_cached_handler", _HANDLER_ABSENT)
    if cached is not _HANDLER_ABSENT:
        return cached
    compiler = _COMPILERS.get(instr.base_opcode)
    if compiler is None:
        handler = None
    else:
        try:
            handler = compiler(instr)
        except Exception as exc:  # noqa: BLE001 - deferred to execution time
            handler = _deferred_error(exc)
    return instr._cache("_cached_handler", handler)


def _deferred_error(exc: Exception):
    # Re-raise a fresh instance per execution: the closure is cached on a
    # shared instruction, and re-raising one exception object from concurrent
    # measuring threads would race on its traceback (and pin compile frames).
    exc_type, exc_args = type(exc), exc.args

    def raise_at_execution(ex, warp, cycle, outcome):
        raise exc_type(*exc_args)

    return raise_at_execution
