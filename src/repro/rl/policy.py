"""Actor-critic policy network.

Matches the architecture described in §3.5 of the paper: a convolutional
encoder over the instruction-embedding matrix (one row per SASS instruction)
followed by an MLP that outputs action probabilities, plus a value head for
the critic.  Implemented with the numpy layers of :mod:`repro.rl.nn`.
"""

from __future__ import annotations

import numpy as np

from repro.rl.distributions import MaskedCategorical
from repro.rl.nn import Conv1d, Dense, GlobalAvgPool, Parameter, ReLU, Sequential, Tanh


class ActorCritic:
    """CNN encoder with categorical actor and scalar critic heads."""

    def __init__(
        self,
        observation_shape: tuple[int, int],
        num_actions: int,
        *,
        conv_channels: int = 32,
        hidden: int = 64,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.observation_shape = tuple(observation_shape)
        self.num_actions = int(num_actions)
        num_features = observation_shape[1]
        self.encoder = Sequential(
            Conv1d(num_features, conv_channels, kernel_size=3, rng=rng),
            ReLU(),
            Conv1d(conv_channels, conv_channels, kernel_size=3, rng=rng),
            ReLU(),
            GlobalAvgPool(),
            Dense(conv_channels, hidden, rng=rng),
            Tanh(),
        )
        # Small output gain for the policy head (PPO implementation detail).
        self.actor_head = Dense(hidden, num_actions, gain=0.01, rng=rng)
        self.critic_head = Dense(hidden, 1, gain=1.0, rng=rng)
        self._hidden: np.ndarray | None = None

    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        return (
            self.encoder.parameters()
            + self.actor_head.parameters()
            + self.critic_head.parameters()
        )

    def forward(self, observations: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(logits, values)`` for a batch of observations."""
        observations = np.asarray(observations, dtype=np.float64)
        if observations.ndim == 2:
            observations = observations[None, ...]
        hidden = self.encoder.forward(observations)
        self._hidden = hidden
        logits = self.actor_head.forward(hidden)
        values = self.critic_head.forward(hidden)[:, 0]
        return logits, values

    def backward(self, grad_logits: np.ndarray, grad_values: np.ndarray) -> None:
        """Backpropagate gradients from the two heads through the encoder."""
        grad_hidden = self.actor_head.backward(grad_logits)
        grad_hidden = grad_hidden + self.critic_head.backward(
            np.asarray(grad_values, dtype=np.float64).reshape(-1, 1)
        )
        self.encoder.backward(grad_hidden)

    # ------------------------------------------------------------------
    def distribution(self, observations: np.ndarray, masks: np.ndarray | None = None) -> tuple[MaskedCategorical, np.ndarray]:
        logits, values = self.forward(observations)
        return MaskedCategorical(logits, masks), values

    def act(
        self,
        observation: np.ndarray,
        mask: np.ndarray | None,
        rng: np.random.Generator,
        *,
        deterministic: bool = False,
    ) -> tuple[int, float, float]:
        """Sample (or take the argmax of) one action.

        Returns ``(action, log_prob, value)``.
        """
        dist, values = self.distribution(observation[None, ...] if observation.ndim == 2 else observation, None if mask is None else mask[None, :])
        action = int(dist.mode()[0]) if deterministic else int(dist.sample(rng)[0])
        log_prob = float(dist.log_prob(np.array([action]))[0])
        return action, log_prob, float(values[0])

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"p{i}": p.value.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(f"checkpoint has {len(state)} tensors, expected {len(params)}")
        for i, p in enumerate(params):
            value = np.asarray(state[f"p{i}"], dtype=np.float64)
            if value.shape != p.value.shape:
                raise ValueError(f"parameter {i} shape mismatch: {value.shape} vs {p.value.shape}")
            p.value = value.copy()

    def save(self, path) -> None:
        np.savez(path, **self.state_dict())

    @classmethod
    def load(cls, path, observation_shape, num_actions, **kwargs) -> "ActorCritic":
        model = cls(observation_shape, num_actions, **kwargs)
        data = np.load(path)
        model.load_state_dict({key: data[key] for key in data.files})
        return model
