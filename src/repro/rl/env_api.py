"""Gym-style environment interface.

The paper wraps the reordering process in the standardized Gym interface
(§3.7) so future RL algorithms can be swapped in; this module defines the
same contract for the pure-numpy stack.
"""

from __future__ import annotations

import numpy as np


class Space:
    """Base class of observation / action spaces."""


class Discrete(Space):
    """A discrete action space of ``n`` actions."""

    def __init__(self, n: int):
        self.n = int(n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Discrete({self.n})"


class Box(Space):
    """A continuous observation space described by its shape."""

    def __init__(self, shape: tuple[int, ...]):
        self.shape = tuple(int(s) for s in shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(shape={self.shape})"


class Env:
    """Gym-like environment contract.

    Sub-classes must define ``observation_space``, ``action_space`` and
    implement :meth:`reset` and :meth:`step`.  Environments with invalid
    actions additionally expose :meth:`action_masks`.
    """

    observation_space: Box
    action_space: Discrete

    def reset(self, *, seed: int | None = None) -> tuple[np.ndarray, dict]:
        raise NotImplementedError

    def step(self, action: int) -> tuple[np.ndarray, float, bool, bool, dict]:
        raise NotImplementedError

    def action_masks(self) -> np.ndarray:
        """Boolean mask of currently valid actions (all valid by default)."""
        return np.ones(self.action_space.n, dtype=bool)

    def close(self) -> None:  # pragma: no cover - optional hook
        """Release any resources held by the environment."""
