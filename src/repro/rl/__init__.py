"""Reinforcement-learning stack: numpy neural nets, masked PPO and a Gym-like API."""

from repro.rl.buffer import RolloutBatch, RolloutBuffer
from repro.rl.distributions import MaskedCategorical
from repro.rl.env_api import Box, Discrete, Env, Space
from repro.rl.nn import (
    Conv1d,
    Dense,
    GlobalAvgPool,
    Layer,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
    clip_grad_norm,
    orthogonal_init,
)
from repro.rl.optim import Adam
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory, UpdateStats

__all__ = [
    "Env",
    "Space",
    "Discrete",
    "Box",
    "MaskedCategorical",
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Conv1d",
    "GlobalAvgPool",
    "Sequential",
    "orthogonal_init",
    "clip_grad_norm",
    "Adam",
    "ActorCritic",
    "RolloutBuffer",
    "RolloutBatch",
    "PPOConfig",
    "PPOTrainer",
    "TrainingHistory",
    "UpdateStats",
]
