"""Masked categorical distribution used for action selection.

Invalid actions (those that would violate a dependence, §3.5) receive a mask
of 0, which assigns them an effectively impossible probability by pushing
their logit to a large negative value before the softmax.
"""

from __future__ import annotations

import numpy as np

_MASK_VALUE = -1e9


class MaskedCategorical:
    """A batch of categorical distributions with optional action masks."""

    def __init__(self, logits: np.ndarray, mask: np.ndarray | None = None):
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim == 1:
            logits = logits[None, :]
        self.mask = None
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.ndim == 1:
                mask = mask[None, :]
            logits = np.where(mask, logits, _MASK_VALUE)
            self.mask = mask
        self.logits = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(self.logits)
        self.probs = exp / exp.sum(axis=1, keepdims=True)

    @property
    def num_actions(self) -> int:
        return self.probs.shape[1]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        cumulative = self.probs.cumsum(axis=1)
        draws = rng.random(self.probs.shape[0])[:, None]
        return (cumulative < draws).sum(axis=1)

    def mode(self) -> np.ndarray:
        return self.probs.argmax(axis=1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions, dtype=int)
        rows = np.arange(self.probs.shape[0])
        return np.log(self.probs[rows, actions] + 1e-12)

    def entropy(self) -> np.ndarray:
        p = self.probs
        return -(p * np.log(p + 1e-12)).sum(axis=1)

    # ------------------------------------------------------------------
    # Gradients (analytic, used by the PPO update)
    # ------------------------------------------------------------------
    def log_prob_grad_logits(self, actions: np.ndarray) -> np.ndarray:
        """d log pi(a|s) / d logits = onehot(a) - probs."""
        actions = np.asarray(actions, dtype=int)
        grad = -self.probs.copy()
        grad[np.arange(self.probs.shape[0]), actions] += 1.0
        if self.mask is not None:
            grad = np.where(self.mask, grad, 0.0)
        return grad

    def entropy_grad_logits(self) -> np.ndarray:
        """d entropy / d logits for a softmax-parameterised categorical."""
        p = self.probs
        log_p = np.log(p + 1e-12)
        inner = -(log_p + 1.0)
        expectation = (p * inner).sum(axis=1, keepdims=True)
        grad = p * (inner - expectation)
        if self.mask is not None:
            grad = np.where(self.mask, grad, 0.0)
        return grad
