"""Minimal neural-network layers in numpy with explicit backpropagation.

PyTorch is not available offline, so the PPO agent's policy/value network —
a small CNN over the instruction-embedding matrix followed by MLP heads
(§3.5 of the paper) — is implemented here from scratch.  Each layer caches
its forward activations and implements ``backward`` returning the gradient
with respect to its input while accumulating parameter gradients.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[:] = 0.0

    @property
    def shape(self):
        return self.value.shape


def orthogonal_init(shape, gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Orthogonal initialization (the PPO implementation detail the paper's
    reference implementation [11] prescribes)."""
    rng = rng or np.random.default_rng(0)
    flat_shape = (shape[0], int(np.prod(shape[1:]))) if len(shape) > 1 else (shape[0], 1)
    a = rng.normal(0.0, 1.0, flat_shape)
    u, _, vt = np.linalg.svd(a, full_matrices=False)
    q = u if u.shape == flat_shape else vt
    return (gain * q.reshape(shape)).astype(np.float64)


class Layer:
    """Base layer: forward caches what backward needs."""

    def parameters(self) -> list[Parameter]:
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, *, gain: float = np.sqrt(2), rng=None):
        self.weight = Parameter(orthogonal_init((in_features, out_features), gain=gain, rng=rng))
        self.bias = Parameter(np.zeros(out_features))
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.weight.grad += self._x.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T


class ReLU(Layer):
    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Tanh(Layer):
    def __init__(self):
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * (1.0 - self._y**2)


class Conv1d(Layer):
    """1-D convolution over the instruction axis (valid padding via zero-pad).

    Input shape ``(batch, length, in_channels)``; output
    ``(batch, length, out_channels)`` with symmetric zero padding so the
    instruction count is preserved.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3, *, rng=None):
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")
        self.kernel_size = kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(
            orthogonal_init((kernel_size * in_channels, out_channels), gain=np.sqrt(2), rng=rng)
        )
        self.bias = Parameter(np.zeros(out_channels))
        self._cols: np.ndarray | None = None
        self._input_shape: tuple | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        batch, length, channels = x.shape
        pad = self.kernel_size // 2
        padded = np.pad(x, ((0, 0), (pad, pad), (0, 0)))
        cols = np.empty((batch, length, self.kernel_size * channels))
        for k in range(self.kernel_size):
            cols[:, :, k * channels : (k + 1) * channels] = padded[:, k : k + length, :]
        return cols

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        self._cols = self._im2col(x)
        batch, length, _ = x.shape
        flat = self._cols.reshape(batch * length, -1)
        out = flat @ self.weight.value + self.bias.value
        return out.reshape(batch, length, self.out_channels)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        batch, length, _ = grad.shape
        grad_flat = grad.reshape(batch * length, self.out_channels)
        cols_flat = self._cols.reshape(batch * length, -1)
        self.weight.grad += cols_flat.T @ grad_flat
        self.bias.grad += grad_flat.sum(axis=0)
        grad_cols = (grad_flat @ self.weight.value.T).reshape(batch, length, -1)
        # col2im: scatter the column gradients back to the padded input.
        pad = self.kernel_size // 2
        channels = self.in_channels
        grad_padded = np.zeros((batch, length + 2 * pad, channels))
        for k in range(self.kernel_size):
            grad_padded[:, k : k + length, :] += grad_cols[:, :, k * channels : (k + 1) * channels]
        return grad_padded[:, pad : pad + length, :]


class GlobalAvgPool(Layer):
    """Mean over the instruction axis: ``(batch, length, C) -> (batch, C)``."""

    def __init__(self):
        self._length: int = 1
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        self._length = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        batch, length, channels = self._shape
        return np.repeat(grad[:, None, :], length, axis=1) / length


class Sequential(Layer):
    """A chain of layers."""

    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Global gradient-norm clipping (PPO implementation detail)."""
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in parameters:
            p.grad *= scale
    return total
