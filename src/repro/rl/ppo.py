"""Proximal policy optimization with action masking (§3.7 of the paper).

The default hyperparameters follow the large-scale study the paper cites
("The 37 Implementation Details of Proximal Policy Optimization"): clipped
surrogate objective, GAE-lambda advantages, advantage normalization per
minibatch, entropy bonus, value-loss coefficient, global gradient clipping
and the Adam epsilon of 1e-5.  Gradients are computed analytically (the
softmax/log-prob/entropy derivatives) and backpropagated through the numpy
actor-critic network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rl.buffer import RolloutBuffer
from repro.rl.distributions import MaskedCategorical
from repro.rl.env_api import Env
from repro.rl.nn import clip_grad_norm
from repro.rl.optim import Adam
from repro.rl.policy import ActorCritic
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

_LOG = get_logger("rl.ppo")


@dataclass
class PPOConfig:
    """PPO hyperparameters (defaults from the reference study [11])."""

    learning_rate: float = 2.5e-4
    num_steps: int = 32  # rollout length == episode length of the assembly game
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_coef: float = 0.2
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    max_grad_norm: float = 0.5
    update_epochs: int = 4
    num_minibatches: int = 4
    norm_advantage: bool = True
    anneal_lr: bool = False
    seed: int = 0

    def with_overrides(self, **kwargs) -> "PPOConfig":
        data = self.__dict__.copy()
        data.update(kwargs)
        return PPOConfig(**data)


@dataclass
class UpdateStats:
    """Diagnostics of one PPO update (Figure 12 time series)."""

    global_step: int
    policy_loss: float
    value_loss: float
    entropy: float
    approx_kl: float
    clip_fraction: float
    learning_rate: float


@dataclass
class TrainingHistory:
    """Everything logged over a training run."""

    episodic_returns: list[tuple[int, float]] = field(default_factory=list)
    updates: list[UpdateStats] = field(default_factory=list)

    def returns_series(self) -> tuple[list[int], list[float]]:
        steps = [s for s, _ in self.episodic_returns]
        values = [r for _, r in self.episodic_returns]
        return steps, values

    def kl_series(self) -> tuple[list[int], list[float]]:
        return [u.global_step for u in self.updates], [u.approx_kl for u in self.updates]

    def entropy_series(self) -> tuple[list[int], list[float]]:
        return [u.global_step for u in self.updates], [u.entropy for u in self.updates]

    def best_return(self) -> float:
        return max((r for _, r in self.episodic_returns), default=float("-inf"))

    def final_return(self, window: int = 5) -> float:
        tail = [r for _, r in self.episodic_returns[-window:]]
        return float(np.mean(tail)) if tail else float("-inf")


class PPOTrainer:
    """On-policy PPO training loop for a single (masked) environment."""

    def __init__(self, env: Env, config: PPOConfig | None = None, *, policy: ActorCritic | None = None):
        self.env = env
        self.config = config or PPOConfig()
        observation_shape = env.observation_space.shape
        num_actions = env.action_space.n
        self.policy = policy or ActorCritic(observation_shape, num_actions, seed=self.config.seed)
        self.optimizer = Adam(self.policy.parameters(), lr=self.config.learning_rate)
        self.history = TrainingHistory()
        self.rng = as_rng(self.config.seed)
        self.global_step = 0

    # ------------------------------------------------------------------
    def train(self, total_timesteps: int, *, callback=None) -> TrainingHistory:
        """Run PPO for ``total_timesteps`` environment steps."""
        cfg = self.config
        observation, _ = self.env.reset(seed=cfg.seed)
        done = False
        episode_return = 0.0
        num_updates = max(1, total_timesteps // cfg.num_steps)

        for update in range(1, num_updates + 1):
            if cfg.anneal_lr:
                frac = 1.0 - (update - 1) / num_updates
                self.optimizer.lr = cfg.learning_rate * frac
            buffer = RolloutBuffer(cfg.num_steps, observation.shape, self.env.action_space.n)
            for _ in range(cfg.num_steps):
                mask = self.env.action_masks()
                action, log_prob, value = self.policy.act(observation, mask, self.rng)
                next_observation, reward, terminated, truncated, info = self.env.step(action)
                self.global_step += 1
                episode_return += reward
                step_done = bool(terminated or truncated)
                buffer.add(observation, action, log_prob, reward, value, done, mask)
                observation = next_observation
                done = step_done
                if step_done:
                    self.history.episodic_returns.append((self.global_step, episode_return))
                    if callback is not None:
                        callback(self, episode_return, info)
                    episode_return = 0.0
                    observation, _ = self.env.reset()
                    done = False
            _, last_value = self.policy.forward(observation[None, ...])
            buffer.compute_returns(float(last_value[0]), done, gamma=cfg.gamma, gae_lambda=cfg.gae_lambda)
            stats = self._update(buffer)
            self.history.updates.append(stats)
            _LOG.debug(
                "update %d step %d kl=%.4f entropy=%.3f", update, self.global_step, stats.approx_kl, stats.entropy
            )
        return self.history

    # ------------------------------------------------------------------
    def _update(self, buffer: RolloutBuffer) -> UpdateStats:
        cfg = self.config
        batch = buffer.get()
        batch_size = cfg.num_steps
        minibatch_size = max(1, batch_size // cfg.num_minibatches)
        indices = np.arange(batch_size)

        policy_losses, value_losses, entropies, kls, clip_fracs = [], [], [], [], []
        for _ in range(cfg.update_epochs):
            self.rng.shuffle(indices)
            for start in range(0, batch_size, minibatch_size):
                mb = indices[start : start + minibatch_size]
                observations = batch.observations[mb]
                actions = batch.actions[mb]
                old_log_probs = batch.log_probs[mb]
                advantages = batch.advantages[mb]
                returns = batch.returns[mb]
                masks = batch.masks[mb]
                if cfg.norm_advantage and len(mb) > 1:
                    advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

                logits, values = self.policy.forward(observations)
                dist = MaskedCategorical(logits, masks)
                log_probs = dist.log_prob(actions)
                entropy = dist.entropy()
                log_ratio = log_probs - old_log_probs
                ratio = np.exp(log_ratio)

                # Losses (for reporting).
                unclipped = -advantages * ratio
                clipped = -advantages * np.clip(ratio, 1 - cfg.clip_coef, 1 + cfg.clip_coef)
                policy_loss = float(np.maximum(unclipped, clipped).mean())
                value_error = values - returns
                value_loss = float(0.5 * (value_error**2).mean())
                entropy_mean = float(entropy.mean())
                approx_kl = float(((ratio - 1.0) - log_ratio).mean())
                clip_fraction = float((np.abs(ratio - 1.0) > cfg.clip_coef).mean())

                # ---- analytic gradients ---------------------------------
                n = len(mb)
                # d policy_loss / d log_prob: -A * ratio where the unclipped
                # branch is active, 0 where the clipped branch dominates.
                use_unclipped = unclipped >= clipped
                dloss_dlogp = np.where(use_unclipped, -advantages * ratio, 0.0) / n
                grad_logits = dist.log_prob_grad_logits(actions) * dloss_dlogp[:, None]
                # Entropy bonus (maximised, so subtract its gradient).
                grad_logits -= cfg.entropy_coef * dist.entropy_grad_logits() / n
                # Value loss gradient.
                grad_values = cfg.value_coef * value_error / n

                self.optimizer.zero_grad()
                self.policy.backward(grad_logits, grad_values)
                clip_grad_norm(self.policy.parameters(), cfg.max_grad_norm)
                self.optimizer.step()

                policy_losses.append(policy_loss)
                value_losses.append(value_loss)
                entropies.append(entropy_mean)
                kls.append(approx_kl)
                clip_fracs.append(clip_fraction)

        return UpdateStats(
            global_step=self.global_step,
            policy_loss=float(np.mean(policy_losses)),
            value_loss=float(np.mean(value_losses)),
            entropy=float(np.mean(entropies)),
            approx_kl=float(np.mean(kls)),
            clip_fraction=float(np.mean(clip_fracs)),
            learning_rate=self.optimizer.lr,
        )
