"""Rollout buffer with generalized advantage estimation (GAE)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RolloutBatch:
    """Flattened rollout data ready for the PPO update."""

    observations: np.ndarray
    actions: np.ndarray
    log_probs: np.ndarray
    values: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray
    masks: np.ndarray


class RolloutBuffer:
    """Stores one rollout of ``num_steps`` transitions for a single environment."""

    def __init__(self, num_steps: int, observation_shape, num_actions: int):
        self.num_steps = int(num_steps)
        self.observation_shape = tuple(observation_shape)
        self.num_actions = int(num_actions)
        self.reset()

    def reset(self) -> None:
        self.observations = np.zeros((self.num_steps, *self.observation_shape), dtype=np.float64)
        self.actions = np.zeros(self.num_steps, dtype=np.int64)
        self.log_probs = np.zeros(self.num_steps, dtype=np.float64)
        self.rewards = np.zeros(self.num_steps, dtype=np.float64)
        self.values = np.zeros(self.num_steps, dtype=np.float64)
        self.dones = np.zeros(self.num_steps, dtype=bool)
        self.masks = np.ones((self.num_steps, self.num_actions), dtype=bool)
        self._pos = 0

    @property
    def full(self) -> bool:
        return self._pos >= self.num_steps

    def add(self, observation, action, log_prob, reward, value, done, mask) -> None:
        if self.full:
            raise RuntimeError("rollout buffer is full")
        i = self._pos
        self.observations[i] = observation
        self.actions[i] = action
        self.log_probs[i] = log_prob
        self.rewards[i] = reward
        self.values[i] = value
        self.dones[i] = done
        if mask is not None:
            self.masks[i] = mask
        self._pos += 1

    def compute_returns(self, last_value: float, last_done: bool, *, gamma: float, gae_lambda: float) -> None:
        """GAE-lambda advantages and returns (CleanRL-style)."""
        advantages = np.zeros(self.num_steps, dtype=np.float64)
        last_gae = 0.0
        for t in reversed(range(self.num_steps)):
            if t == self.num_steps - 1:
                next_non_terminal = 1.0 - float(last_done)
                next_value = last_value
            else:
                next_non_terminal = 1.0 - float(self.dones[t + 1])
                next_value = self.values[t + 1]
            delta = self.rewards[t] + gamma * next_value * next_non_terminal - self.values[t]
            last_gae = delta + gamma * gae_lambda * next_non_terminal * last_gae
            advantages[t] = last_gae
        self.advantages = advantages
        self.returns = advantages + self.values

    def get(self) -> RolloutBatch:
        return RolloutBatch(
            observations=self.observations,
            actions=self.actions,
            log_probs=self.log_probs,
            values=self.values,
            advantages=self.advantages,
            returns=self.returns,
            masks=self.masks,
        )
