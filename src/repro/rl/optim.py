"""Adam optimizer for the numpy neural-network layers."""

from __future__ import annotations

import numpy as np

from repro.rl.nn import Parameter


class Adam:
    """Adam with the standard bias correction (the PPO reference default)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 2.5e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-5,
    ):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        self._t += 1
        for i, p in enumerate(self.parameters):
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * p.grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * (p.grad**2)
            m_hat = self._m[i] / (1 - self.beta1**self._t)
            v_hat = self._v[i] / (1 - self.beta2**self._t)
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
