"""One function per table / figure of the paper's evaluation section.

Every function returns plain Python data (rows, series) that the benchmark
harness under ``benchmarks/`` prints, so the output can be compared against
the paper's reported numbers.  Absolute values differ (the GPU is a
simulator), but the *shape* of each result is what the reproduction checks:
who wins, by roughly what factor, and how the fractions split.

By default the experiments run at a reduced scale (``scale="test"`` shapes,
short RL training budgets) so the whole suite completes in minutes on a
laptop; pass ``scale="bench"``/``"paper"`` and larger budgets to push toward
the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import geometric_mean

from repro.analysis.stall_inference import infer_stall_counts
from repro.api import CacheConfig, MeasurementPolicy, OptimizationConfig, PoolConfig, Session
from repro.arch.latency_table import default_stall_table
from repro.baselines.vendor import VendorBaselines
from repro.microbench.clockbased import clock_based_stall_estimate
from repro.microbench.harness import available_opcodes, build_stall_table
from repro.rl.ppo import PPOConfig
from repro.sim.gpu import GPUSimulator
from repro.triton.compiler import compile_spec
from repro.triton.spec import available_kernels, get_spec

#: Experiment sessions never write the deploy cache.
_NO_CACHE = CacheConfig(enabled=False)


def _session(
    simulator: GPUSimulator | None,
    *,
    scale: str = "test",
    episode_length: int = 16,
    train_timesteps: int = 96,
    seed: int = 0,
    autotune: bool = False,
    verify: bool = False,
    ppo: PPOConfig | None = None,
    trace: bool = False,
) -> Session:
    """A cache-less Session configured for one experiment."""
    config = OptimizationConfig(
        strategy="ppo",
        scale=scale,
        episode_length=episode_length,
        train_timesteps=train_timesteps,
        seed=seed,
        autotune=autotune,
        verify=verify,
        ppo=ppo,
        trace=trace,
    )
    return Session(gpu=simulator, config=config, cache=_NO_CACHE)


#: The paper's Figure 6 presentation order for the Table 2 workloads.
_FIGURE6_ORDER = ("bmm", "fused_ff", "flash-attention", "mmLeakyReLu", "softmax", "rmsnorm")

#: The evaluated kernels: every spec carrying the ``table2`` registry tag,
#: in Figure 6 order.  The registry is the source of truth — a kernel tagged
#: ``table2`` without a slot in the presentation order is a hard error here,
#: not a silently reordered table.
EVALUATED_KERNELS = tuple(
    sorted(available_kernels(tags=("table2",)), key=_FIGURE6_ORDER.index)
)


def format_table(rows: list[dict], *, floatfmt: str = "{:.3f}") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(empty)"
    columns = list(rows[0].keys())
    rendered = [[_fmt_cell(row.get(col), floatfmt) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines = ["  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def _fmt_cell(value, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return floatfmt.format(value)
    return str(value)


# ---------------------------------------------------------------------------
# Table 1 / §5.2 / §4.3
# ---------------------------------------------------------------------------
def table1_stall_counts(opcodes=None, simulator: GPUSimulator | None = None) -> list[dict]:
    """Table 1: stall counts of fixed-latency instructions from microbenchmarks."""
    simulator = simulator or GPUSimulator()
    measured = build_stall_table(opcodes or available_opcodes(), simulator=simulator)
    builtin = default_stall_table()
    rows = []
    for opcode, stall in measured.as_rows():
        rows.append(
            {
                "instruction": opcode,
                "measured_stall": stall,
                "table1_stall": builtin.lookup(opcode),
            }
        )
    return rows


def section43_clock_vs_dependency(simulator: GPUSimulator | None = None) -> dict:
    """§4.3: clock-based vs dependency-based measurement of IADD3."""
    simulator = simulator or GPUSimulator()
    clock = clock_based_stall_estimate("IADD3", simulator=simulator)
    dependency = build_stall_table(["IADD3"], simulator=simulator).lookup("IADD3")
    return {
        "clock_based_cycles_per_instruction": clock.cycles_per_instruction,
        "dependency_based_stall": dependency,
        "underestimates": clock.cycles_per_instruction < dependency,
    }


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------
def table2_workloads(scale: str = "paper") -> list[dict]:
    """Table 2: evaluated kernels and their input configurations."""
    rows = []
    for name in EVALUATED_KERNELS:
        spec = get_spec(name)
        rows.append(
            {
                "kernel": name,
                "bound": "compute" if spec.compute_bound else "memory",
                "configuration": str(spec.shapes(scale)),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 6 / §5.3
# ---------------------------------------------------------------------------
@dataclass
class Figure6Row:
    """Normalized throughput of one kernel (Triton = 1.0)."""

    kernel: str
    triton: float = 1.0
    cuasmrl: float = 1.0
    torch: float | None = None
    reference: float | None = None
    cutlass: float | None = None
    triton_ms: float = 0.0
    cuasmrl_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "Triton": self.triton,
            "CuAsmRL": self.cuasmrl,
            "Torch": self.torch,
            "Reference": self.reference,
            "Cutlass": self.cutlass,
            "Triton_ms": self.triton_ms,
            "CuAsmRL_ms": self.cuasmrl_ms,
        }


def figure6_throughput(
    kernels=EVALUATED_KERNELS,
    *,
    scale: str = "test",
    train_timesteps: int = 96,
    episode_length: int = 16,
    include_vendor: bool = True,
    seed: int = 0,
    simulator: GPUSimulator | None = None,
) -> list[Figure6Row]:
    """Figure 6: normalized kernel throughput of CuAsmRL vs Triton vs baselines.

    Throughput is normalized to Triton (= the autotuned ``-O3`` schedule); a
    value above 1 means faster than Triton.
    """
    session = _session(
        simulator,
        scale=scale,
        episode_length=episode_length,
        train_timesteps=train_timesteps,
        seed=seed,
        autotune=True,
        verify=True,
        ppo=PPOConfig(num_steps=episode_length, seed=seed),
    )
    vendor = VendorBaselines(session.simulator) if include_vendor else None
    rows: list[Figure6Row] = []
    for name in kernels:
        spec = get_spec(name)
        compiled = session.compile(spec)
        report = session.optimize_compiled(compiled)
        triton_ms = report.baseline_time_ms
        cuasmrl_ms = report.best_time_ms
        row = Figure6Row(
            kernel=name,
            triton=1.0,
            cuasmrl=triton_ms / cuasmrl_ms if cuasmrl_ms else 1.0,
            triton_ms=triton_ms,
            cuasmrl_ms=cuasmrl_ms,
        )
        if vendor is not None:
            timings = vendor.timings_for(spec, compiled)
            if timings.torch_ms:
                row.torch = triton_ms / timings.torch_ms
            if timings.reference_ms:
                row.reference = triton_ms / timings.reference_ms
            if timings.cutlass_ms:
                row.cutlass = triton_ms / timings.cutlass_ms
        rows.append(row)
    return rows


def figure6_summary(rows: list[Figure6Row]) -> dict:
    """§5.3 headline numbers: geometric-mean and maximum speedup over Triton."""
    speedups = [row.cuasmrl for row in rows if row.cuasmrl > 0]
    return {
        "geomean_speedup": geometric_mean(speedups) if speedups else 1.0,
        "max_speedup": max(speedups) if speedups else 1.0,
        "min_speedup": min(speedups) if speedups else 1.0,
    }


# ---------------------------------------------------------------------------
# Measurement-service ablation: evaluations/sec per backend
# ---------------------------------------------------------------------------
def measurement_backend_throughput(
    kernel: str = "mmLeakyReLu",
    *,
    scale: str = "test",
    search_budget: int = 48,
    episode_length: int = 16,
    max_workers: int = 4,
    simulator: GPUSimulator | None = None,
) -> list[dict]:
    """Greedy-search measurement throughput under each measurement backend.

    One row per backend configuration: evaluations/sec of the search loop,
    raw simulator measurements actually issued, and memoization hits.  The
    search itself is deterministic, so every configuration must land on the
    same ``best_ms`` — the backends only change how fast (and how often) the
    simulator is consulted.
    """
    config = OptimizationConfig(
        strategy="greedy",
        scale=scale,
        search_budget=search_budget,
        episode_length=episode_length,
        autotune=False,
        verify=False,
    )
    policies = [
        ("inline", MeasurementPolicy()),
        ("threaded", MeasurementPolicy(backend="threaded", max_workers=max_workers)),
        (
            "threaded+memo",
            MeasurementPolicy(backend="threaded", max_workers=max_workers, memoize=True),
        ),
    ]
    rows = []
    for name, policy in policies:
        session = Session(gpu=simulator, config=config, measurement=policy, cache=_NO_CACHE)
        report = session.optimize(kernel)
        stats = report.details.get("measurement", {})
        rows.append(
            {
                "backend": name,
                "best_ms": report.best_time_ms,
                "evaluations": report.evaluations,
                "elapsed_s": report.details["elapsed_s"],
                "evals_per_sec": report.details["evaluations_per_sec"],
                "raw_measurements": stats.get("measured"),
                "memo_hits": stats.get("memo_hits"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Pool-sharding ablation: evaluations/sec of a SessionPool per measurement backend
# ---------------------------------------------------------------------------
def pool_sharding_throughput(
    # Round-robin puts the duplicate of each kernel on the *other* worker, so
    # the shared memo sees genuine cross-worker traffic.
    kernels=("mmLeakyReLu", "mmLeakyReLu", "rmsnorm", "rmsnorm"),
    *,
    backends=("A100-80GB-PCIe", "A100-80GB-PCIe"),
    scheduler: str = "round_robin",
    scale: str = "test",
    search_budget: int = 24,
    episode_length: int = 8,
    max_workers: int = 2,
    measure_backends=("inline", "threaded", "process"),
    steady_state_kernel: str = "mmLeakyReLu",
    steady_state_scale: str = "bench",
    steady_state_batch: int = 8,
) -> list[dict]:
    """Sharded greedy search plus steady-state timing per measurement backend.

    One row per measurement backend, combining two phases:

    * **pool phase** — the same workload list runs through a
      :class:`~repro.pool.SessionPool` over ``backends`` (duplicates by
      default, so the shared memo sees cross-worker traffic).  The search is
      deterministic, so every backend must land on the same per-job
      ``best_ms`` — the backends only change how fast the simulator is
      consulted.  ``evals_per_sec`` is end-to-end pool throughput, including
      executor startup and memo dedup, and is therefore noisy at quick scale.
    * **steady-state phase** — a warm measurement service for one bench-scale
      workload times a fixed candidate batch (``steady_evals_per_sec``),
      isolating raw measurement throughput from pool scheduling and startup.
      This is where ``"process"`` wins on multi-core hosts: the timing loop
      is pure Python, so only worker processes run candidates in parallel,
      while ``"threaded"`` stays serialized on the GIL.
    """
    from repro.pool import SessionPool

    config = OptimizationConfig(
        strategy="greedy",
        scale=scale,
        search_budget=search_budget,
        episode_length=episode_length,
        autotune=False,
        verify=False,
    )
    steady_compiled = compile_spec(get_spec(steady_state_kernel), scale=steady_state_scale)
    steady_inputs = steady_compiled.make_inputs(0)
    rows = []
    for name in measure_backends:
        policy = MeasurementPolicy(backend=name, max_workers=max_workers)
        with SessionPool(
            backends, pool=PoolConfig(scheduler=scheduler),
            config=config, measurement=policy, cache=_NO_CACHE,
        ) as pool:
            result = pool.optimize_many(kernels)
        steady = _steady_state_throughput(
            name, steady_compiled, steady_inputs, max_workers, steady_state_batch
        )
        rows.append(
            {
                "backend": name,
                "best_ms": tuple(report.best_time_ms for report in result),
                "evaluations": result.evaluations,
                "elapsed_s": result.elapsed_s,
                "evals_per_sec": result.evaluations_per_sec,
                "jobs_per_sec": result.jobs_per_sec,
                "memo_hits": result.memo.get("hits"),
                "cross_worker_hits": result.memo.get("cross_worker_hits"),
                "failures": len(result.failures),
                "steady_time_ms": steady["time_ms"],
                "steady_evals_per_sec": steady["evals_per_sec"],
            }
        )
    return rows


def _steady_state_throughput(
    backend: str, compiled, inputs: dict, max_workers: int, batch: int
) -> dict:
    """Evaluations/sec of one warm measurement service over a candidate batch.

    The service is warmed with one submission before timing, so executor
    startup (amortized over a whole search in real runs) stays out of the
    steady-state number.
    """
    import time as _time

    from repro.sim.measure_service import create_measurement_service

    service = create_measurement_service(
        GPUSimulator(),
        compiled.grid,
        inputs,
        compiled.param_order,
        backend=backend,
        max_workers=max_workers,
    )
    try:
        warm = service.submit(compiled.kernel).result()
        started = _time.perf_counter()
        timings = service.measure_batch([compiled.kernel] * batch)
        elapsed = _time.perf_counter() - started
    finally:
        service.close()
    assert all(timing == warm for timing in timings)
    return {
        "time_ms": warm.time_ms,
        "evals_per_sec": batch / elapsed if elapsed > 0 else float("inf"),
    }


# ---------------------------------------------------------------------------
# Figure 7 / §5.2
# ---------------------------------------------------------------------------
def figure7_stall_resolution(kernels=EVALUATED_KERNELS, *, scale: str = "test") -> dict:
    """Figure 7: how stall-count dependences are resolved (db / inferred / denylist)."""
    per_kernel = []
    totals = {"db": 0, "infer-only": 0, "denylist": 0}
    for name in kernels:
        spec = get_spec(name)
        compiled = compile_spec(spec, scale=scale)
        result = infer_stall_counts(compiled.kernel)
        counts = result.resolution_counts()
        for key in totals:
            totals[key] += counts.get(key, 0)
        fractions = result.resolution_fractions()
        per_kernel.append({"kernel": name, **{k: round(v, 3) for k, v in fractions.items()}})
    grand_total = sum(totals.values()) or 1
    average = {key: value / grand_total for key, value in totals.items()}
    return {"per_kernel": per_kernel, "average": average}


# ---------------------------------------------------------------------------
# Figure 8 / §5.5
# ---------------------------------------------------------------------------
def figure8_hyperparameter_sweep(
    kernel: str = "mmLeakyReLu",
    *,
    scale: str = "test",
    train_timesteps: int = 96,
    episode_length: int = 16,
    learning_rates=(2.5e-4, 1e-3, 1e-4),
    batch_sizes=(16, 8),
    simulator: GPUSimulator | None = None,
) -> list[dict]:
    """Figure 8: episodic returns under different learning rates / batch sizes.

    The first (learning-rate, batch-size) combination is the default setting;
    the paper's claim is that the default converges to the best return.
    """
    session = _session(
        simulator, scale=scale, episode_length=episode_length, train_timesteps=train_timesteps
    )
    compiled = session.compile(kernel)
    rows = []
    for lr in learning_rates:
        for batch in batch_sizes:
            ppo = PPOConfig(learning_rate=lr, num_steps=batch, seed=0)
            sweep = session.with_config(session.config.replace(ppo=ppo))
            report = sweep.optimize_compiled(compiled)
            history = report.details["history"]
            steps, returns = history.returns_series()
            rows.append(
                {
                    "learning_rate": lr,
                    "batch_size": batch,
                    "is_default": lr == 2.5e-4 and batch == batch_sizes[0],
                    "best_return": history.best_return(),
                    "final_return": history.final_return(),
                    "returns_series": list(zip(steps, returns)),
                    "speedup": report.speedup,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 3 and Figures 10/11 / §5.4
# ---------------------------------------------------------------------------
def table3_workload_analysis(
    kernel: str = "mmLeakyReLu",
    *,
    scale: str = "test",
    train_timesteps: int = 96,
    episode_length: int = 16,
    simulator: GPUSimulator | None = None,
) -> dict:
    """Table 3: compute / memory workload analysis of CuAsmRL vs Triton."""
    session = _session(
        simulator, scale=scale, episode_length=episode_length, train_timesteps=train_timesteps
    )
    compiled = session.compile(kernel)
    report = session.optimize_compiled(compiled)
    best_kernel = report.artifact.result.best_kernel
    inputs = compiled.make_inputs(0)
    gpu = session.simulator
    triton_profile = gpu.profile(compiled.kernel, compiled.grid, inputs, compiled.param_order)
    cuasmrl_profile = gpu.profile(best_kernel, compiled.grid, inputs, compiled.param_order)
    return {
        "kernel": kernel,
        "CuAsmRL": cuasmrl_profile.workload_analysis_rows(),
        "Triton": triton_profile.workload_analysis_rows(),
        "CuAsmRL_memory_chart": cuasmrl_profile.memory_chart(),
        "Triton_memory_chart": triton_profile.memory_chart(),
        "speedup": report.speedup,
    }


def figure10_11_memory_chart(**kwargs) -> dict:
    """Figures 10/11: the memory-chart part of the Table 3 analysis."""
    analysis = table3_workload_analysis(**kwargs)
    return {
        "CuAsmRL": analysis["CuAsmRL_memory_chart"],
        "Triton": analysis["Triton_memory_chart"],
    }


# ---------------------------------------------------------------------------
# Figure 12 / §5.5
# ---------------------------------------------------------------------------
def figure12_training_stats(
    kernel: str = "mmLeakyReLu",
    *,
    scale: str = "test",
    train_timesteps: int = 128,
    episode_length: int = 16,
    simulator: GPUSimulator | None = None,
) -> dict:
    """Figure 12: approximate KL divergence and policy entropy over training."""
    session = _session(
        simulator, scale=scale, episode_length=episode_length, train_timesteps=train_timesteps
    )
    report = session.optimize_compiled(session.compile(kernel))
    history = report.details["history"]
    steps_kl, kl = history.kl_series()
    steps_ent, entropy = history.entropy_series()
    return {
        "kernel": kernel,
        "kl": list(zip(steps_kl, kl)),
        "entropy": list(zip(steps_ent, entropy)),
    }


# ---------------------------------------------------------------------------
# Figures 9 and 13 / §5.7
# ---------------------------------------------------------------------------
def figure9_13_optimization_moves(
    kernel: str = "mmLeakyReLu",
    *,
    scale: str = "test",
    train_timesteps: int = 96,
    episode_length: int = 16,
    simulator: GPUSimulator | None = None,
) -> dict:
    """Figures 9/13: trace the reorderings the trained agent applies."""
    session = _session(
        simulator,
        scale=scale,
        episode_length=episode_length,
        train_timesteps=train_timesteps,
        trace=True,
    )
    report = session.optimize_compiled(session.compile(kernel))
    moves = report.details["moves"]
    significant = max(moves, key=lambda m: m.reward, default=None)
    return {
        "kernel": kernel,
        "speedup": report.speedup,
        "num_moves": len(moves),
        "moves": [
            {
                "step": m.step,
                "direction": m.direction,
                "moved": m.moved_instruction,
                "swapped_with": m.swapped_with,
                "reward": m.reward,
            }
            for m in moves
        ],
        "most_significant": None
        if significant is None
        else {
            "moved": significant.moved_instruction,
            "swapped_with": significant.swapped_with,
            "reward": significant.reward,
        },
    }
