"""Experiment harness regenerating every table and figure of the paper's evaluation."""

from repro.bench.experiments import (
    Figure6Row,
    figure6_throughput,
    figure7_stall_resolution,
    figure8_hyperparameter_sweep,
    figure9_13_optimization_moves,
    figure10_11_memory_chart,
    figure12_training_stats,
    format_table,
    table1_stall_counts,
    table2_workloads,
    table3_workload_analysis,
)

__all__ = [
    "Figure6Row",
    "figure6_throughput",
    "figure7_stall_resolution",
    "figure8_hyperparameter_sweep",
    "figure9_13_optimization_moves",
    "figure10_11_memory_chart",
    "figure12_training_stats",
    "table1_stall_counts",
    "table2_workloads",
    "table3_workload_analysis",
    "format_table",
]
