"""Typed, frozen configuration objects for the :mod:`repro.api` facade.

These replace the ad-hoc keyword arguments that used to be scattered across
``JitKernel`` (``scale=``, ``cache_dir=``), ``CuAsmRLOptimizer``
(``episode_length=``, ``train_timesteps=``, ``autotune=``) and the
``baselines.search`` functions (``budget=``, ``population=``, ...).  A
:class:`~repro.api.session.Session` owns one of each; per-call overrides go
through :meth:`OptimizationConfig.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.rl.ppo import PPOConfig
from repro.sim.gpu import MeasurementConfig


@dataclass(frozen=True, slots=True)
class MeasurementPolicy:
    """How kernel runtimes are measured (the §3.6 CUDA-events protocol)."""

    #: Warm-up launches before timing starts.
    warmup_iterations: int = 100
    #: Timed launches averaged into the reported runtime.
    measure_iterations: int = 100
    #: Relative Gaussian measurement noise; the paper reports run-to-run
    #: standard deviation within 1%, 0 keeps the simulator deterministic.
    noise_std: float = 0.0
    #: Seed of the synthetic measurement noise; each schedule derives its own
    #: noise stream from ``(seed, schedule digest)``.
    seed: int = 0
    #: Measurement-service backend: ``"inline"`` (synchronous, the default),
    #: ``"threaded"`` (candidate batches fan out over a thread pool) or
    #: ``"process"`` (a process pool — the GIL-free choice for the pure-Python
    #: timing loop; bit-identical timings to ``"inline"`` for a fixed seed).
    backend: str = "inline"
    #: Workers of the ``"threaded"`` / ``"process"`` backends; ``None`` picks
    #: a default.
    max_workers: int | None = None
    #: Start method of the ``"process"`` backend (``"fork"``, ``"spawn"``,
    #: ``"forkserver"``); ``None`` prefers ``fork`` where available.
    mp_context: str | None = None
    #: Dedup repeated schedules by content digest before hitting the simulator.
    memoize: bool = False
    #: Cross-session memo table (see :class:`repro.pool.SharedMemoTable`);
    #: set by :class:`~repro.pool.SessionPool` so workers share measurements.
    #: Implies memoization for the workloads it covers.
    shared_memo: "object | None" = field(default=None, repr=False, compare=False)
    #: This session's identity in the shared table (cross-worker-hit
    #: accounting); meaningless without ``shared_memo``.
    memo_owner: str = ""
    #: Cooperative cancellation checkpoint: a zero-argument callable the
    #: measurement service invokes before issuing candidate (batches); raise
    #: from it (e.g. :class:`repro.errors.JobCancelled`) to abort the search.
    #: Installed per-run via :class:`~repro.api.session.SessionHooks`.
    checkpoint: "object | None" = field(default=None, repr=False, compare=False)
    #: Per-step progress callback ``progress(submitted: int)`` invoked after
    #: every candidate submission with the cumulative submission count; the
    #: serve layer turns these into streamed ``measured(n)`` events.
    progress: "object | None" = field(default=None, repr=False, compare=False)
    #: Checkpoint-state exporter ``save_state(state: dict)``: strategies that
    #: support resumption call it with an opaque JSON-able snapshot of their
    #: search state (best schedule so far, evaluations consumed, RNG stream
    #: position) after every committed step; the serve layer persists the
    #: latest snapshot in the job journal so a killed server can resume the
    #: search instead of restarting it.
    save_state: "object | None" = field(default=None, repr=False, compare=False)
    #: A previously exported checkpoint to resume from (the dict handed to
    #: ``save_state``); ``None`` (or an unrecognised payload) starts fresh.
    resume_state: "object | None" = field(default=None, repr=False, compare=False)

    def to_measurement_config(self) -> MeasurementConfig:
        """Lower to the :mod:`repro.sim` measurement record."""
        return MeasurementConfig(
            warmup_iterations=self.warmup_iterations,
            measure_iterations=self.measure_iterations,
            noise_std=self.noise_std,
            seed=self.seed,
        )


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Where (and whether) optimized cubins are cached (§4.2)."""

    #: Directory of the deploy-time cubin cache.
    directory: str | Path = ".cuasmrl_cache"
    #: Disable to run a cache-less session (e.g. the benchmark harness).
    enabled: bool = True
    #: Deploy-only sessions: look up cached cubins but never write new ones.
    readonly: bool = False
    #: Size bound of the cache; stores evict the least-recently-used entries
    #: (by file mtime) beyond this many.  ``None`` keeps the cache unbounded.
    max_entries: int | None = None


@dataclass(frozen=True, slots=True)
class PoolConfig:
    """Shape of a :class:`repro.pool.SessionPool` deployment.

    One worker session is created per entry of :attr:`backends`; duplicate
    names fan the pool out over several instances of the same GPU type.  Each
    worker's cubin cache is namespaced by backend name under the pool's cache
    directory, so deploy artifacts of different targets never collide.
    """

    #: Backend name (or alias) per worker; duplicates allowed.
    backends: tuple[str, ...] = ("A100-80GB-PCIe",)
    #: Sharding policy; any name in the scheduler registry
    #: (``"round_robin"``, ``"least_loaded"``, or a registered custom one).
    scheduler: str = "round_robin"
    #: Share one measurement-memo table across all workers, so a schedule
    #: measured by one worker is a hit for every sibling on the same workload.
    share_memo: bool = True
    #: Size bound of the shared memo table.
    memo_max_entries: int = 65536

    def replace(self, **overrides) -> "PoolConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How the serve queue retries jobs that hit *infrastructure* failures.

    Only failures classified by :func:`repro.errors.is_infrastructure_failure`
    (worker crashes, closed sessions, broken measurement executors) are ever
    retried; verifier rejections, compile errors and other user-attributable
    failures fail immediately on the first attempt.  Delays grow
    exponentially with a deterministic jitter (no hidden RNG state — the
    jitter is a pure function of the attempt number), so chaos tests replay
    bit-identically.  Wall-clock accounting against :attr:`budget_s` uses the
    queue's injectable clock (``JobQueue(clock=...)``).
    """

    #: Total attempts per job, including the first run; 1 disables retries.
    max_attempts: int = 3
    #: Delay before the first retry, in seconds.
    backoff_base_s: float = 0.05
    #: Multiplier applied per subsequent retry.
    backoff_factor: float = 2.0
    #: Ceiling on any single retry delay.
    backoff_max_s: float = 2.0
    #: Jitter amplitude as a fraction of the delay (0 disables); the realised
    #: jitter is deterministic per attempt number.
    jitter: float = 0.1
    #: Total retry-delay budget per job, in seconds; once a job's cumulative
    #: backoff would exceed this it fails instead.  ``None`` is unbounded.
    budget_s: float | None = None

    def replace(self, **overrides) -> "RetryPolicy":
        """A copy of this policy with the given fields replaced."""
        return replace(self, **overrides)

    def delay_for(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        import hashlib

        step = max(1, int(attempt))
        delay = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (step - 1),
        )
        if self.jitter > 0.0:
            digest = hashlib.sha256(f"retry-jitter:{step}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0**64  # [0, 1)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(0.0, delay)


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Shape of a :class:`repro.serve.JobQueue` front door over a pool.

    The queue owns one worker thread per pool worker plus a dispatcher that
    feeds per-worker queues; these knobs control how aggressively idle
    workers steal queued jobs from deep sibling queues and whether finished
    ``(workload, backend)`` results are kept in a pool-level store so
    re-submissions resolve instantly from their cache key.
    """

    #: Idle workers steal queued (unpinned, backend-compatible) jobs from the
    #: tail of the deepest sibling queue instead of going idle.
    steal: bool = True
    #: Only steal from a sibling still holding at least this many queued jobs.
    steal_min_depth: int = 1
    #: Keep finished ``RunReport``\ s in a pool-level result store, keyed by
    #: the §4.2 cache key, so re-submitted jobs skip optimization entirely.
    result_store: bool = True
    #: Size bound of the result store; ``None`` keeps it unbounded.
    store_max_entries: int | None = None
    #: Re-verify result-store hits with the static schedule verifier before
    #: returning them; a hit that no longer verifies is invalidated and the
    #: job re-optimizes instead of serving a stale/corrupt schedule.
    verify_store_hits: bool = True
    #: Emit a ``measured(n)`` progress event every N candidate submissions.
    progress_every: int = 1
    #: Admission control: reject new submissions (``rejected`` event +
    #: :class:`repro.errors.AdmissionError`) while this many jobs are already
    #: waiting (inbox + per-worker queues).  ``None`` accepts everything.
    max_pending: int | None = None
    #: Job-record TTL: terminal records older than this many seconds are
    #: evicted by :meth:`repro.serve.JobQueue.gc` (run opportunistically on
    #: submit).  ``None`` keeps terminal records forever.  In-flight jobs are
    #: never evicted regardless.
    job_ttl_s: float | None = None
    #: Hard bound on retained job records; the oldest *terminal* records are
    #: evicted beyond it.  ``None`` keeps the job map unbounded.
    max_records: int | None = None
    #: Retry jobs that hit infrastructure failures (worker crash, closed
    #: session, broken executor) with exponential backoff; ``None`` fails
    #: them on the first attempt.  See :class:`RetryPolicy`.
    retry: RetryPolicy | None = None

    def replace(self, **overrides) -> "ServeConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True, slots=True)
class RemoteConfig:
    """Shape of the :mod:`repro.remote` HTTP front door over a serve queue.

    Everything the in-process :class:`~repro.api.config.ServeConfig` does not
    cover: where the server listens, where the durable job journal lives,
    how often it is compacted, and the per-tenant submission quotas enforced
    before a request ever reaches the queue.
    """

    #: Listen address of ``python -m repro.remote.serve``.
    host: str = "127.0.0.1"
    #: Listen port; ``0`` binds an ephemeral port (printed on startup).
    port: int = 0
    #: Record submissions, terminal job records and result-store entries in
    #: an append-only JSONL journal so serving state survives restarts.
    journal: bool = True
    #: Journal location; ``None`` places ``serve-journal.jsonl`` beside the
    #: pool's cubin cache (journaling is disabled when the pool has no cache
    #: directory and no explicit path is given).
    journal_path: str | Path | None = None
    #: Compact the journal (rewrite it from live state, dropping superseded
    #: and GC'd entries) after this many appended lines.
    compact_every: int = 2048
    #: Token-bucket capacity per tenant; every submission spends ``cost``
    #: tokens and an empty bucket means HTTP 429 + a ``rejected`` event.
    #: ``None`` disables quotas.
    tenant_tokens: float | None = None
    #: Bucket refill rate in tokens/second (0 never refills).
    tenant_refill_per_s: float = 0.0
    #: Tenant accounted when a request carries no ``X-Tenant`` header.
    default_tenant: str = "anonymous"
    #: Longest server-side block of one ``GET /v1/jobs/<id>/result`` call;
    #: clients long-poll in slices of at most this many seconds.
    result_timeout_s: float = 60.0
    #: On restart, re-queue journal-replayed *in-flight* jobs (resuming from
    #: their last journaled checkpoint when one exists) instead of marking
    #: them failed with a ``ServerRestart`` error.
    resume_inflight: bool = True

    def replace(self, **overrides) -> "RemoteConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True, slots=True)
class OptimizationConfig:
    """Everything that shapes one optimization run, for every strategy.

    Strategy-specific fields are simply ignored by strategies that do not
    use them (``train_timesteps`` by the training-free searches,
    ``population`` by PPO, and so on), so one config drives any strategy.
    """

    #: Default search strategy; any name in the strategy registry.
    strategy: str = "ppo"
    #: Shape set used when none is passed explicitly: paper / bench / test.
    scale: str = "bench"
    #: Moves per assembly-game episode (§3.5).
    episode_length: int = 32
    #: Total environment steps for the RL strategy.
    train_timesteps: int = 512
    #: Evaluation budget for the training-free searches (§7).
    search_budget: int = 64
    #: Evolutionary strategy population size.
    population: int = 8
    #: Evolutionary strategy generations.
    generations: int = 4
    #: Evolutionary strategy genome length (moves per individual).
    moves_per_individual: int = 8
    #: Grid-search the kernel configuration space first (stage 1 of §3.1).
    autotune: bool = True
    #: Verification mode: ``"off"`` skips verification; ``"final"`` statically
    #: verifies the best schedule against the seed's dependence graph and
    #: probabilistically tests it (§4.1), falling back to -O3 on any failure;
    #: ``"functional"`` additionally runs the best schedule and the -O3 seed
    #: through the functional engine on identical inputs and diffs the outputs
    #: bit-exactly (rule ``V701``); ``"paranoid"`` further lints the seed
    #: listing, re-verifies the schedule disassembled back out of the spliced
    #: cubin and audits every control code for an exact encode/decode
    #: round-trip (rule ``V702``).  Booleans are accepted for compatibility:
    #: ``True`` means ``"final"``, ``False`` means ``"off"``.
    verify: str | bool = "final"
    #: Trials of the probabilistic tester.
    verify_trials: int = 1
    #: Seed for strategy randomness (PPO init, random/evolutionary search).
    seed: int = 0
    #: Replay one deterministic inference episode after PPO training and
    #: attach the discovered moves to the report (§5.7).
    trace: bool = False
    #: Full PPO hyperparameter override; defaults are derived from
    #: ``episode_length`` and ``seed`` when left unset.
    ppo: PPOConfig | None = field(default=None, repr=False)

    def replace(self, **overrides) -> "OptimizationConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def ppo_config(self) -> PPOConfig:
        """The PPO hyperparameters this config implies."""
        if self.ppo is not None:
            return self.ppo
        return PPOConfig(num_steps=self.episode_length, seed=self.seed)
