"""Search-strategy protocol and registry: RL and the §7 baselines, one interface.

The paper frames SASS scheduling as a game played by a PPO agent (§3), and
discusses training-free alternatives — random search, greedy hill-climbing,
evolutionary search — as §7 ablations.  Here all four are interchangeable
behind ``Session.optimize(spec, strategy=...)``: each is a frozen-dataclass
strategy registered by name, consuming one :class:`StrategyContext` and
producing one :class:`StrategyOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.api.config import MeasurementPolicy, OptimizationConfig
from repro.baselines.search import (
    ScheduleSearchResult,
    run_evolutionary_search,
    run_greedy_search,
    run_random_search,
)
from repro.core.trainer import CuAsmRLTrainer
from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator, MeasurementConfig
from repro.triton.compiler import CompiledKernel


@dataclass(frozen=True)
class StrategyContext:
    """Everything a strategy needs to run: the compiled kernel and the knobs."""

    compiled: CompiledKernel
    simulator: GPUSimulator
    config: OptimizationConfig
    measurement: MeasurementConfig
    #: Full measurement policy (service backend / workers / memoization);
    #: ``measurement`` above stays as the lowered per-call protocol record.
    measurement_policy: MeasurementPolicy | None = None

    @property
    def policy(self) -> MeasurementPolicy:
        return self.measurement_policy or MeasurementPolicy()


@dataclass(frozen=True)
class StrategyOutcome:
    """What every strategy returns: the best schedule found and its cost."""

    strategy: str
    baseline_time_ms: float
    best_time_ms: float
    best_kernel: SassKernel
    evaluations: int
    details: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def speedup(self) -> float:
        return self.baseline_time_ms / self.best_time_ms if self.best_time_ms else 1.0


@runtime_checkable
class SearchStrategy(Protocol):
    """A schedule-search algorithm pluggable into a Session."""

    name: str

    def run(self, context: StrategyContext) -> StrategyOutcome:  # pragma: no cover - protocol
        ...


_STRATEGIES: dict[str, SearchStrategy] = {}


def register_strategy(name: str):
    """Class decorator: instantiate the strategy dataclass and register it."""

    def decorator(cls):
        _STRATEGIES[name] = cls()
        return cls

    return decorator


def get_strategy(name: str) -> SearchStrategy:
    try:
        return _STRATEGIES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown strategy {name!r}; available: {list(available_strategies())}"
        ) from exc


def available_strategies() -> tuple[str, ...]:
    return tuple(sorted(_STRATEGIES))


def _from_search(result: ScheduleSearchResult) -> StrategyOutcome:
    return StrategyOutcome(
        strategy=result.method,
        baseline_time_ms=result.baseline_time_ms,
        best_time_ms=result.best_time_ms,
        best_kernel=result.best_kernel,
        evaluations=result.evaluations,
        details={
            "history": list(result.history),
            "measurement": dict(result.measurement_stats),
            "invalid_actions": result.invalid_actions,
            **(
                {"resumed_from_evaluations": result.resumed_from}
                if result.resumed_from
                else {}
            ),
        },
    )


# ---------------------------------------------------------------------------
# Built-in strategies
# ---------------------------------------------------------------------------
@register_strategy("ppo")
@dataclass(frozen=True)
class PPOStrategy:
    """The paper's approach: a PPO agent plays the assembly game (§3)."""

    name: str = "ppo"

    def run(self, context: StrategyContext) -> StrategyOutcome:
        config = context.config
        policy = context.policy
        trainer = CuAsmRLTrainer(
            context.compiled,
            context.simulator,
            ppo_config=config.ppo_config(),
            episode_length=config.episode_length,
            measurement=context.measurement,
            measure_backend=policy.backend,
            max_workers=policy.max_workers,
            mp_context=policy.mp_context,
            memoize=policy.memoize,
            shared_memo=policy.shared_memo,
            memo_owner=policy.memo_owner,
            checkpoint=policy.checkpoint,
            progress=policy.progress,
        )
        try:
            result = trainer.train(config.train_timesteps, verify=False)
            details: dict = {"history": result.history, "episodes": result.episodes}
            if config.trace:
                details["moves"] = trainer.trace_inference(seed=config.seed)
            details["measurement"] = trainer.env.measurement_stats.as_dict()
            details["invalid_actions"] = trainer.env.invalid_actions
        finally:
            trainer.env.close()
        return StrategyOutcome(
            strategy=self.name,
            baseline_time_ms=result.baseline_time_ms,
            best_time_ms=result.best_time_ms,
            best_kernel=result.best_kernel,
            evaluations=config.train_timesteps,
            details=details,
        )


@register_strategy("random")
@dataclass(frozen=True)
class RandomSearchStrategy:
    """Uniform random valid moves until the budget is exhausted (§7)."""

    name: str = "random"

    def run(self, context: StrategyContext) -> StrategyOutcome:
        config = context.config
        policy = context.policy
        return _from_search(
            run_random_search(
                context.compiled,
                budget=config.search_budget,
                episode_length=config.episode_length,
                simulator=context.simulator,
                seed=config.seed,
                measurement=context.measurement,
                backend=policy.backend,
                max_workers=policy.max_workers,
                mp_context=policy.mp_context,
                memoize=policy.memoize,
                shared_memo=policy.shared_memo,
                memo_owner=policy.memo_owner,
                checkpoint=policy.checkpoint,
                progress=policy.progress,
                save_state=policy.save_state,
                resume_state=policy.resume_state,
            )
        )


@register_strategy("greedy")
@dataclass(frozen=True)
class GreedySearchStrategy:
    """Greedy hill-climbing over single moves; the expert-scheduling stand-in."""

    name: str = "greedy"

    def run(self, context: StrategyContext) -> StrategyOutcome:
        config = context.config
        policy = context.policy
        return _from_search(
            run_greedy_search(
                context.compiled,
                budget=config.search_budget,
                episode_length=config.episode_length,
                simulator=context.simulator,
                measurement=context.measurement,
                backend=policy.backend,
                max_workers=policy.max_workers,
                mp_context=policy.mp_context,
                memoize=policy.memoize,
                shared_memo=policy.shared_memo,
                memo_owner=policy.memo_owner,
                checkpoint=policy.checkpoint,
                progress=policy.progress,
                save_state=policy.save_state,
                resume_state=policy.resume_state,
            )
        )


@register_strategy("evolutionary")
@dataclass(frozen=True)
class EvolutionarySearchStrategy:
    """(mu + lambda)-style evolution over move sequences (§7)."""

    name: str = "evolutionary"

    def run(self, context: StrategyContext) -> StrategyOutcome:
        config = context.config
        policy = context.policy
        return _from_search(
            run_evolutionary_search(
                context.compiled,
                population=config.population,
                generations=config.generations,
                moves_per_individual=config.moves_per_individual,
                episode_length=config.episode_length,
                simulator=context.simulator,
                seed=config.seed,
                measurement=context.measurement,
                backend=policy.backend,
                max_workers=policy.max_workers,
                mp_context=policy.mp_context,
                memoize=policy.memoize,
                shared_memo=policy.shared_memo,
                memo_owner=policy.memo_owner,
                checkpoint=policy.checkpoint,
                progress=policy.progress,
                save_state=policy.save_state,
                resume_state=policy.resume_state,
            )
        )
