"""Structured result objects returned by the :mod:`repro.api` facade."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.utils.serialization import to_json_str

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.optimizer import OptimizedKernel


@dataclass(frozen=True)
class RunReport:
    """Outcome of one ``Session.optimize`` run, strategy-independent.

    Every strategy (PPO and the §7 training-free searches) produces the same
    report shape, so callers can sweep ``strategy=`` without branching.  The
    deployable artifact (optimized SASS spliced into the cubin) rides along in
    :attr:`artifact`; :meth:`summary` is the JSON-able projection.
    """

    #: Workload name (Table 2).
    kernel: str
    #: GPU backend name the run targeted.
    gpu: str
    #: Strategy that produced the schedule.
    strategy: str
    #: Shapes the kernel was compiled at.
    shapes: dict
    #: Kernel configuration chosen by autotuning (tile sizes, warps).
    config: dict
    #: Runtime of the ``-O3`` schedule (T0 of Eq. 3).
    baseline_time_ms: float
    #: Runtime of the best schedule found.
    best_time_ms: float
    #: Schedule evaluations spent (environment steps / measurements).
    evaluations: int
    #: Verification outcome (static verifier + probabilistic tester must both
    #: pass); ``None`` when verification was skipped (``verify="off"``).
    verified: bool | None = None
    #: Structured verifier findings (``Diagnostic.as_dict()`` payloads) from
    #: the static schedule audit; empty when clean or not verified.
    diagnostics: tuple = ()
    #: Deploy-cache key the artifact was stored under, if cached.
    cache_key: str | None = None
    #: Whether the artifact was written to the session cache.
    cached: bool = False
    #: Strategy-specific extras (PPO ``history``, traced ``moves``, ...).
    details: dict = field(default_factory=dict, repr=False, compare=False)
    #: The deployable :class:`OptimizedKernel`; not part of the summary.
    artifact: "OptimizedKernel | None" = field(default=None, repr=False, compare=False)
    #: ``"ExceptionType: message"`` when the run failed (``optimize_many``
    #: surfaces per-job failures as reports instead of dropping the batch).
    error: str | None = None

    @classmethod
    def from_error(cls, kernel: str, gpu: str, strategy: str, error: str) -> "RunReport":
        """The canonical failed report: one job's error in its result slot.

        Shared by every path that converts an exception into a report —
        ``Session.optimize_many``, the pool wrapper and the serve queue —
        so the failure shape cannot drift between them.
        """
        return cls(
            kernel=kernel,
            gpu=gpu,
            strategy=strategy,
            shapes={},
            config={},
            baseline_time_ms=0.0,
            best_time_ms=0.0,
            evaluations=0,
            error=error,
        )

    @classmethod
    def from_summary(cls, summary: dict) -> "RunReport":
        """Rebuild a report from its :meth:`summary` projection.

        Used by the durable serving layer (:mod:`repro.remote`) to replay
        journaled results across process restarts.  The deployable artifact
        and strategy ``details`` are not part of the summary, so replayed
        reports carry ``artifact=None`` — deploys still resolve through the
        on-disk cubin cache, which persists independently.
        """
        verified = summary.get("verified")
        return cls(
            kernel=summary.get("kernel", ""),
            gpu=summary.get("gpu", ""),
            strategy=summary.get("strategy", ""),
            shapes=dict(summary.get("shapes") or {}),
            config=dict(summary.get("config") or {}),
            baseline_time_ms=float(summary.get("baseline_time_ms") or 0.0),
            best_time_ms=float(summary.get("best_time_ms") or 0.0),
            evaluations=int(summary.get("evaluations") or 0),
            verified=verified if verified is None else bool(verified),
            diagnostics=tuple(dict(diag) for diag in summary.get("diagnostics") or ()),
            cache_key=summary.get("cache_key"),
            cached=bool(summary.get("cached", False)),
            error=summary.get("error"),
        )

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def speedup(self) -> float:
        return self.baseline_time_ms / self.best_time_ms if self.best_time_ms else 1.0

    def summary(self) -> dict[str, Any]:
        """JSON-able projection of the report."""
        return {
            "kernel": self.kernel,
            "gpu": self.gpu,
            "strategy": self.strategy,
            "shapes": dict(self.shapes),
            "config": dict(self.config),
            "baseline_time_ms": self.baseline_time_ms,
            "best_time_ms": self.best_time_ms,
            "speedup": self.speedup,
            "evaluations": self.evaluations,
            "verified": self.verified,
            "diagnostics": [dict(diag) for diag in self.diagnostics],
            "cache_key": self.cache_key,
            "cached": self.cached,
            "error": self.error,
        }

    def to_json(self) -> str:
        return to_json_str(self.summary())


class JobStatus(str, enum.Enum):
    """Lifecycle of one :class:`repro.serve.JobQueue` job.

    ``queued → assigned → running → done/failed/cancelled``; ``cancelled``
    can also follow ``queued``/``assigned`` directly when the job is pulled
    back before a worker picks it up.  ``rejected`` is terminal from birth:
    admission control (a full pending queue, an exhausted tenant quota)
    refused the submission before it ever queued.
    """

    QUEUED = "queued"
    ASSIGNED = "assigned"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self in (
            JobStatus.DONE,
            JobStatus.FAILED,
            JobStatus.CANCELLED,
            JobStatus.REJECTED,
        )


@dataclass(frozen=True)
class JobRecord:
    """Point-in-time snapshot of one serving job, JSON-able.

    Returned by :meth:`repro.serve.JobHandle.record` and
    :meth:`repro.serve.JobQueue.status`; the live state keeps moving, the
    record does not.
    """

    #: Queue-unique job id (``j00042``).
    job_id: str
    #: Workload name (kernel spec name).
    kernel: str
    #: Backend the submission requested, or ``None`` for "any worker".
    backend: str | None
    #: Lifecycle state at snapshot time.
    status: JobStatus
    #: Name of the worker that ran (or is running) the job, if assigned.
    worker: str | None
    #: Relative cost estimate used for placement and backlog accounting.
    cost: float
    #: The job was stolen by an idle worker from a sibling's queue.
    stolen: bool = False
    #: The job resolved from the pool-level result store without optimizing.
    from_store: bool = False
    #: Candidate measurements issued so far (streamed ``measured(n)``).
    measured: int = 0
    #: Wall-clock timestamps (``time.time``); unset stages are ``None``.
    submitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    #: ``"ExceptionType: message"`` for failed jobs.
    error: str | None = None
    #: §4.2 cache key of the result, once known.
    cache_key: str | None = None
    #: Tenant the submission was accounted to (remote front door quotas).
    tenant: str | None = None
    #: Verifier rule codes (``V1xx``...) that invalidated a result-store hit
    #: and forced this job to re-optimize; empty otherwise.
    invalidation_rules: tuple = ()
    #: The record was reconstructed from a journal replay after a restart
    #: (the job ran in a previous server process).
    replayed: bool = False
    #: Retries consumed so far: 0 on the first attempt, incremented each time
    #: the queue re-ran the job after an infrastructure failure.
    attempt: int = 0
    #: The job was re-queued after a server restart and resumed from its last
    #: journaled search checkpoint (or restarted fresh when none existed).
    resumed: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kernel": self.kernel,
            "backend": self.backend,
            "status": self.status.value,
            "worker": self.worker,
            "cost": self.cost,
            "stolen": self.stolen,
            "from_store": self.from_store,
            "measured": self.measured,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "cache_key": self.cache_key,
            "tenant": self.tenant,
            "invalidation_rules": list(self.invalidation_rules),
            "replayed": self.replayed,
            "attempt": self.attempt,
            "resumed": self.resumed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        """Rebuild a record from its :meth:`as_dict` projection (journal replay)."""
        return cls(
            job_id=payload["job_id"],
            kernel=payload.get("kernel", ""),
            backend=payload.get("backend"),
            status=JobStatus(payload.get("status", "queued")),
            worker=payload.get("worker"),
            cost=float(payload.get("cost") or 1.0),
            stolen=bool(payload.get("stolen", False)),
            from_store=bool(payload.get("from_store", False)),
            measured=int(payload.get("measured") or 0),
            submitted_at=payload.get("submitted_at"),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            error=payload.get("error"),
            cache_key=payload.get("cache_key"),
            tenant=payload.get("tenant"),
            invalidation_rules=tuple(payload.get("invalidation_rules") or ()),
            replayed=bool(payload.get("replayed", False)),
            attempt=int(payload.get("attempt") or 0),
            resumed=bool(payload.get("resumed", False)),
        )

    def to_json(self) -> str:
        return to_json_str(self.as_dict())


@dataclass(frozen=True)
class WorkerReport:
    """Per-worker slice of one :class:`PoolReport`."""

    #: Worker name (``w<index>:<backend>``), unique within the pool.
    worker: str
    #: Canonical GPU backend name the worker targets.
    gpu: str
    #: Jobs the scheduler placed on this worker.
    jobs: int
    #: Jobs that ended in a failed :class:`RunReport`.
    failures: int
    #: Schedule evaluations this worker spent.
    evaluations: int
    #: Wall-clock the worker was busy running its shard.
    elapsed_s: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "gpu": self.gpu,
            "jobs": self.jobs,
            "failures": self.failures,
            "evaluations": self.evaluations,
            "elapsed_s": self.elapsed_s,
        }


@dataclass(frozen=True)
class PoolReport:
    """Outcome of one :meth:`repro.pool.SessionPool.optimize_many` run.

    Per-job :class:`RunReport`\\ s (including failed ones) come back in input
    order exactly as ``Session.optimize_many`` returns them; the pool adds
    which worker ran each job, per-worker utilization, shared-memo counters
    and pool-level throughput.
    """

    #: Per-job reports, in input order; failed jobs have ``report.failed``.
    reports: list[RunReport]
    #: Worker name that ran each job, in input order.
    assignments: tuple[str, ...]
    #: Scheduler that produced the assignment.
    scheduler: str
    #: Per-worker utilization, one entry per pool worker (idle ones included).
    workers: list[WorkerReport]
    #: Wall-clock of the whole pool run.
    elapsed_s: float
    #: Shared-memo snapshot (empty when memo sharing is off).
    memo: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self) -> Iterator[RunReport]:
        return iter(self.reports)

    def __getitem__(self, index: int) -> RunReport:
        return self.reports[index]

    @property
    def failures(self) -> list[RunReport]:
        return [report for report in self.reports if report.failed]

    @property
    def succeeded(self) -> list[RunReport]:
        return [report for report in self.reports if not report.failed]

    @property
    def evaluations(self) -> int:
        """Schedule evaluations spent across all workers."""
        return sum(report.evaluations for report in self.reports)

    @property
    def evaluations_per_sec(self) -> float:
        return self.evaluations / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    @property
    def jobs_per_sec(self) -> float:
        return len(self.reports) / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    def summary(self) -> dict[str, Any]:
        """JSON-able projection: job summaries plus pool-level stats."""
        return {
            "jobs": [report.summary() for report in self.reports],
            "assignments": list(self.assignments),
            "scheduler": self.scheduler,
            "workers": [worker.as_dict() for worker in self.workers],
            "failures": len(self.failures),
            "evaluations": self.evaluations,
            "elapsed_s": self.elapsed_s,
            "evaluations_per_sec": self.evaluations_per_sec,
            "jobs_per_sec": self.jobs_per_sec,
            "memo": dict(self.memo),
        }

    def to_json(self) -> str:
        return to_json_str(self.summary())
