"""Structured result objects returned by the :mod:`repro.api` facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.utils.serialization import to_json_str

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.optimizer import OptimizedKernel


@dataclass(frozen=True)
class RunReport:
    """Outcome of one ``Session.optimize`` run, strategy-independent.

    Every strategy (PPO and the §7 training-free searches) produces the same
    report shape, so callers can sweep ``strategy=`` without branching.  The
    deployable artifact (optimized SASS spliced into the cubin) rides along in
    :attr:`artifact`; :meth:`summary` is the JSON-able projection.
    """

    #: Workload name (Table 2).
    kernel: str
    #: GPU backend name the run targeted.
    gpu: str
    #: Strategy that produced the schedule.
    strategy: str
    #: Shapes the kernel was compiled at.
    shapes: dict
    #: Kernel configuration chosen by autotuning (tile sizes, warps).
    config: dict
    #: Runtime of the ``-O3`` schedule (T0 of Eq. 3).
    baseline_time_ms: float
    #: Runtime of the best schedule found.
    best_time_ms: float
    #: Schedule evaluations spent (environment steps / measurements).
    evaluations: int
    #: Probabilistic-testing outcome; ``None`` when verification was skipped.
    verified: bool | None = None
    #: Deploy-cache key the artifact was stored under, if cached.
    cache_key: str | None = None
    #: Whether the artifact was written to the session cache.
    cached: bool = False
    #: Strategy-specific extras (PPO ``history``, traced ``moves``, ...).
    details: dict = field(default_factory=dict, repr=False, compare=False)
    #: The deployable :class:`OptimizedKernel`; not part of the summary.
    artifact: "OptimizedKernel | None" = field(default=None, repr=False, compare=False)
    #: ``"ExceptionType: message"`` when the run failed (``optimize_many``
    #: surfaces per-job failures as reports instead of dropping the batch).
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def speedup(self) -> float:
        return self.baseline_time_ms / self.best_time_ms if self.best_time_ms else 1.0

    def summary(self) -> dict[str, Any]:
        """JSON-able projection of the report."""
        return {
            "kernel": self.kernel,
            "gpu": self.gpu,
            "strategy": self.strategy,
            "shapes": dict(self.shapes),
            "config": dict(self.config),
            "baseline_time_ms": self.baseline_time_ms,
            "best_time_ms": self.best_time_ms,
            "speedup": self.speedup,
            "evaluations": self.evaluations,
            "verified": self.verified,
            "cache_key": self.cache_key,
            "cached": self.cached,
            "error": self.error,
        }

    def to_json(self) -> str:
        return to_json_str(self.summary())


@dataclass(frozen=True)
class WorkerReport:
    """Per-worker slice of one :class:`PoolReport`."""

    #: Worker name (``w<index>:<backend>``), unique within the pool.
    worker: str
    #: Canonical GPU backend name the worker targets.
    gpu: str
    #: Jobs the scheduler placed on this worker.
    jobs: int
    #: Jobs that ended in a failed :class:`RunReport`.
    failures: int
    #: Schedule evaluations this worker spent.
    evaluations: int
    #: Wall-clock the worker was busy running its shard.
    elapsed_s: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "gpu": self.gpu,
            "jobs": self.jobs,
            "failures": self.failures,
            "evaluations": self.evaluations,
            "elapsed_s": self.elapsed_s,
        }


@dataclass(frozen=True)
class PoolReport:
    """Outcome of one :meth:`repro.pool.SessionPool.optimize_many` run.

    Per-job :class:`RunReport`\\ s (including failed ones) come back in input
    order exactly as ``Session.optimize_many`` returns them; the pool adds
    which worker ran each job, per-worker utilization, shared-memo counters
    and pool-level throughput.
    """

    #: Per-job reports, in input order; failed jobs have ``report.failed``.
    reports: list[RunReport]
    #: Worker name that ran each job, in input order.
    assignments: tuple[str, ...]
    #: Scheduler that produced the assignment.
    scheduler: str
    #: Per-worker utilization, one entry per pool worker (idle ones included).
    workers: list[WorkerReport]
    #: Wall-clock of the whole pool run.
    elapsed_s: float
    #: Shared-memo snapshot (empty when memo sharing is off).
    memo: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self) -> Iterator[RunReport]:
        return iter(self.reports)

    def __getitem__(self, index: int) -> RunReport:
        return self.reports[index]

    @property
    def failures(self) -> list[RunReport]:
        return [report for report in self.reports if report.failed]

    @property
    def succeeded(self) -> list[RunReport]:
        return [report for report in self.reports if not report.failed]

    @property
    def evaluations(self) -> int:
        """Schedule evaluations spent across all workers."""
        return sum(report.evaluations for report in self.reports)

    @property
    def evaluations_per_sec(self) -> float:
        return self.evaluations / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    @property
    def jobs_per_sec(self) -> float:
        return len(self.reports) / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    def summary(self) -> dict[str, Any]:
        """JSON-able projection: job summaries plus pool-level stats."""
        return {
            "jobs": [report.summary() for report in self.reports],
            "assignments": list(self.assignments),
            "scheduler": self.scheduler,
            "workers": [worker.as_dict() for worker in self.workers],
            "failures": len(self.failures),
            "evaluations": self.evaluations,
            "elapsed_s": self.elapsed_s,
            "evaluations_per_sec": self.evaluations_per_sec,
            "jobs_per_sec": self.jobs_per_sec,
            "memo": dict(self.memo),
        }

    def to_json(self) -> str:
        return to_json_str(self.summary())
