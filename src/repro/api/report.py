"""Structured result objects returned by the :mod:`repro.api` facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.utils.serialization import to_json_str

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.optimizer import OptimizedKernel


@dataclass(frozen=True)
class RunReport:
    """Outcome of one ``Session.optimize`` run, strategy-independent.

    Every strategy (PPO and the §7 training-free searches) produces the same
    report shape, so callers can sweep ``strategy=`` without branching.  The
    deployable artifact (optimized SASS spliced into the cubin) rides along in
    :attr:`artifact`; :meth:`summary` is the JSON-able projection.
    """

    #: Workload name (Table 2).
    kernel: str
    #: GPU backend name the run targeted.
    gpu: str
    #: Strategy that produced the schedule.
    strategy: str
    #: Shapes the kernel was compiled at.
    shapes: dict
    #: Kernel configuration chosen by autotuning (tile sizes, warps).
    config: dict
    #: Runtime of the ``-O3`` schedule (T0 of Eq. 3).
    baseline_time_ms: float
    #: Runtime of the best schedule found.
    best_time_ms: float
    #: Schedule evaluations spent (environment steps / measurements).
    evaluations: int
    #: Probabilistic-testing outcome; ``None`` when verification was skipped.
    verified: bool | None = None
    #: Deploy-cache key the artifact was stored under, if cached.
    cache_key: str | None = None
    #: Whether the artifact was written to the session cache.
    cached: bool = False
    #: Strategy-specific extras (PPO ``history``, traced ``moves``, ...).
    details: dict = field(default_factory=dict, repr=False, compare=False)
    #: The deployable :class:`OptimizedKernel`; not part of the summary.
    artifact: "OptimizedKernel | None" = field(default=None, repr=False, compare=False)
    #: ``"ExceptionType: message"`` when the run failed (``optimize_many``
    #: surfaces per-job failures as reports instead of dropping the batch).
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def speedup(self) -> float:
        return self.baseline_time_ms / self.best_time_ms if self.best_time_ms else 1.0

    def summary(self) -> dict[str, Any]:
        """JSON-able projection of the report."""
        return {
            "kernel": self.kernel,
            "gpu": self.gpu,
            "strategy": self.strategy,
            "shapes": dict(self.shapes),
            "config": dict(self.config),
            "baseline_time_ms": self.baseline_time_ms,
            "best_time_ms": self.best_time_ms,
            "speedup": self.speedup,
            "evaluations": self.evaluations,
            "verified": self.verified,
            "cache_key": self.cache_key,
            "cached": self.cached,
            "error": self.error,
        }

    def to_json(self) -> str:
        return to_json_str(self.summary())
