"""Backend registry: named GPU targets a :class:`~repro.api.session.Session` can own.

The paper evaluates on one physical A100; the reproduction simulates it.  The
registry generalizes that to a family of simulated parts keyed by GPU name,
so ``Session(gpu="A30-sim")`` is the only change needed to retarget an
optimization run — and so the §4.2 cache keys (which embed the GPU name)
naturally separate per-target cubins.  Ampere-class parts share the GA100
latency table; the Hopper-class ``H100-sim`` target carries its own
(:mod:`repro.arch.hopper`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.arch.ampere import A100, AmpereConfig
from repro.arch.hopper import H100
from repro.sim.gpu import GPUSimulator

BackendFactory = Callable[[], GPUSimulator]


@dataclass(frozen=True, slots=True)
class BackendSpec:
    """One registered simulator target."""

    name: str
    description: str
    factory: BackendFactory
    aliases: tuple[str, ...] = ()
    #: Free-form grouping labels (``"ampere"``, ``"hopper"``, ...) consumed by
    #: :func:`available_backends` and the scenario registry.
    tags: tuple[str, ...] = ()

    @property
    def short_name(self) -> str:
        """Compact display name (first alias, canonical name otherwise).

        Scenario ids (:mod:`repro.scenarios`) embed this so
        ``softmax/A100/test/default`` stays readable.
        """
        return self.aliases[0] if self.aliases else self.name


_BACKENDS: dict[str, BackendSpec] = {}
_ALIASES: dict[str, str] = {}


def register_backend(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
    tags: tuple[str, ...] = (),
):
    """Decorator registering a ``() -> GPUSimulator`` factory under ``name``."""

    def decorator(factory: BackendFactory) -> BackendFactory:
        spec = BackendSpec(
            name=name,
            description=description,
            factory=factory,
            aliases=tuple(aliases),
            tags=tuple(tags),
        )
        _BACKENDS[name] = spec
        _ALIASES[name.lower()] = name
        for alias in spec.aliases:
            _ALIASES[alias.lower()] = name
        return factory

    return decorator


def available_backends(*, tags: Iterable[str] | None = None) -> tuple[str, ...]:
    """Canonical names of every registered backend, optionally tag-filtered.

    With ``tags``, only backends carrying *all* the given tags are returned.
    """
    names = sorted(_BACKENDS)
    if tags is not None:
        wanted = set(tags)
        names = [name for name in names if wanted <= set(_BACKENDS[name].tags)]
    return tuple(names)


def backend_spec(name: str) -> BackendSpec:
    """Look a backend up by canonical name or alias (case-insensitive)."""
    try:
        return _BACKENDS[_ALIASES[name.lower()]]
    except KeyError as exc:
        raise KeyError(
            f"unknown GPU backend {name!r}; available: {list(available_backends())}"
        ) from exc


def create_backend(name: str) -> GPUSimulator:
    """Instantiate a fresh simulator for the named backend."""
    return backend_spec(name).factory()


def resolve_backend(gpu: "str | GPUSimulator | AmpereConfig | None") -> GPUSimulator:
    """Coerce any accepted ``gpu=`` argument into a :class:`GPUSimulator`.

    Accepts a registered backend name (or alias), an already-constructed
    simulator (used as-is), a raw :class:`AmpereConfig` (or any subclass,
    e.g. :class:`~repro.arch.hopper.HopperConfig`), or ``None`` for the
    default A100 target.
    """
    if gpu is None:
        return GPUSimulator()
    if isinstance(gpu, GPUSimulator):
        return gpu
    if isinstance(gpu, AmpereConfig):
        return GPUSimulator(gpu)
    return create_backend(gpu)


# ---------------------------------------------------------------------------
# Built-in simulated targets
# ---------------------------------------------------------------------------
@register_backend(
    "A100-80GB-PCIe",
    aliases=("A100", "A100-sim", "A100-80GB"),
    description="Simulated A100 (GA100, 108 SMs @ 1410 MHz) — the paper's §5.1 target.",
    tags=("ampere", "datacenter"),
)
def _a100() -> GPUSimulator:
    return GPUSimulator(A100)


@register_backend(
    "A100-40GB-PCIe",
    aliases=("A100-40GB",),
    description="Simulated 40 GB A100; same GA100 SM array, distinct cache-key namespace.",
    tags=("ampere", "datacenter"),
)
def _a100_40gb() -> GPUSimulator:
    return GPUSimulator(dataclasses.replace(A100, name="A100-40GB-PCIe"))


@register_backend(
    "A30-24GB-PCIe",
    aliases=("A30", "A30-sim"),
    description="Simulated A30 (GA100 derivative: 56 SMs @ 1440 MHz).",
    tags=("ampere", "datacenter"),
)
def _a30() -> GPUSimulator:
    config = dataclasses.replace(A100, name="A30-24GB-PCIe", num_sms=56, clock_mhz=1440.0)
    return GPUSimulator(config)


@register_backend(
    "RTX3090-24GB",
    aliases=("RTX3090", "GA102"),
    description="Simulated GA102 consumer part (82 SMs @ 1695 MHz, 128 KB shared/SM, sm_86).",
    tags=("ampere", "consumer"),
)
def _ga102() -> GPUSimulator:
    config = dataclasses.replace(
        A100,
        name="RTX3090-24GB",
        compute_capability=86,
        num_sms=82,
        clock_mhz=1695.0,
        shared_memory_per_sm=128 * 1024,
    )
    return GPUSimulator(config)


@register_backend(
    "H100-80GB-SXM",
    aliases=("H100", "H100-sim", "H100-80GB"),
    description="Simulated H100 (GH100, 132 SMs @ 1755 MHz, 228 KB shared/SM, sm_90 "
    "latency table over the Ampere SASS subset).",
    tags=("hopper", "datacenter"),
)
def _h100() -> GPUSimulator:
    return GPUSimulator(H100)
