"""The :class:`Session` facade: one object that owns the whole §4 workflow.

A session binds a GPU backend, a cubin cache and a measurement policy, and
exposes the paper's lifecycle as four verbs::

    session = Session(gpu="A100-sim", cache_dir="./cache",
                      config=OptimizationConfig(scale="test"))
    compiled = session.compile("softmax")            # stage 1: autotune + -O3
    report   = session.optimize("softmax")           # stage 2: schedule search
    deployed = session.deploy("softmax")             # §4.2: cached cubin lookup
    reports  = session.optimize_many(["bmm", "softmax"], jobs=2)

``strategy="ppo"`` (the paper's RL agent) and the §7 baselines
(``"greedy"``, ``"random"``, ``"evolutionary"``) are interchangeable and all
return the same :class:`~repro.api.report.RunReport` shape.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.funcdiff import (
    FunctionalDiffer,
    FunctionalDiffResult,
    audit_control_roundtrip,
)
from repro.analysis.verify import ScheduleVerifier, VerificationResult
from repro.api.backends import resolve_backend
from repro.api.config import CacheConfig, MeasurementPolicy, OptimizationConfig
from repro.api.report import RunReport
from repro.api.strategies import StrategyContext, StrategyOutcome, get_strategy
from repro.arch.ampere import AmpereConfig
from repro.core.optimizer import OptimizedKernel
from repro.core.trainer import OptimizationResult
from repro.rl.ppo import TrainingHistory
from repro.errors import OptimizationError, SessionClosed
from repro.sass.assembler import splice_kernel
from repro.sass.disassembler import disassemble
from repro.sim.functional import ProbabilisticTester, ProbabilisticTestResult
from repro.sim.gpu import GPUSimulator, KernelRun, KernelTiming
from repro.triton.autotuner import Autotuner
from repro.triton.compiler import CompiledKernel, compile_spec
from repro.triton.spec import KernelSpec, get_spec
from repro.utils.logging import get_logger

_LOG = get_logger("api.session")

#: Recognized verification modes, in increasing strictness.
VERIFY_MODES = ("off", "final", "functional", "paranoid")


def normalize_verify_mode(value: "str | bool | None", default: "str | bool" = "final") -> str:
    """Normalize a ``verify=`` argument to one of :data:`VERIFY_MODES`.

    ``"functional"`` adds differential execution (candidate vs. seed schedule
    on identical inputs, outputs diffed bit-exactly — rule ``V701``) on top of
    ``"final"``; ``"paranoid"`` adds the spliced-cubin re-verification and the
    control-code round-trip audit (rule ``V702``) on top of ``"functional"``.

    Booleans are accepted for backwards compatibility: ``True`` is
    ``"final"`` (static + probabilistic verification of the best schedule),
    ``False`` is ``"off"``.  ``None`` falls through to ``default``.
    """
    if value is None:
        value = default
    if isinstance(value, bool):
        return "final" if value else "off"
    mode = str(value).lower()
    if mode not in VERIFY_MODES:
        raise ValueError(f"verify must be one of {VERIFY_MODES} or a bool, got {value!r}")
    return mode


@dataclasses.dataclass(frozen=True)
class SessionHooks:
    """Per-run hooks threaded into the strategy's measurement service.

    ``checkpoint`` is a zero-argument cooperative cancellation gate invoked
    between candidate submissions and batches — raising from it (typically
    :class:`repro.errors.JobCancelled`) aborts the search within one
    measurement batch.  ``progress(submitted)`` is invoked after every
    candidate submission with the cumulative submission count; the serve
    layer streams these as ``measured(n)`` events.  Hooks cover both stages:
    the schedule search (stage 2) and stage-1 autotuning, whose per-config
    measurement loop also polls ``checkpoint``.

    ``save_state(state)`` receives opaque JSON-able search-state snapshots
    from strategies that support resumption (best schedule so far,
    evaluations consumed, RNG stream position); ``resume_state`` hands the
    last such snapshot back to the strategy so an interrupted search
    continues where it stopped instead of restarting.
    """

    checkpoint: "object | None" = None
    progress: "object | None" = None
    save_state: "object | None" = None
    resume_state: "object | None" = None

    def any_set(self) -> bool:
        """True when at least one hook is installed."""
        return any(
            value is not None
            for value in (self.checkpoint, self.progress, self.save_state, self.resume_state)
        )


class Session:
    """Facade over compilation, schedule search, verification and deployment."""

    def __init__(
        self,
        gpu: str | GPUSimulator | AmpereConfig | None = "A100-sim",
        *,
        cache_dir: str | Path | None = None,
        config: OptimizationConfig | None = None,
        measurement: MeasurementPolicy | None = None,
        cache: CacheConfig | None = None,
    ):
        self.simulator = resolve_backend(gpu)
        self.config = config or OptimizationConfig()
        self.measurement = measurement or MeasurementPolicy()
        cache_config = cache or CacheConfig()
        if cache_dir is not None:
            cache_config = dataclasses.replace(cache_config, directory=cache_dir)
        self.cache_config = cache_config
        self.cache = self._make_cache(cache_config)
        self.autotuner = Autotuner(
            self.simulator, measurement=self.measurement.to_measurement_config()
        )
        self._closed = False

    @staticmethod
    def _make_cache(cache_config: CacheConfig):
        from repro.core.jit import CubinCache

        if not cache_config.enabled:
            return None
        return CubinCache(cache_config.directory, max_entries=cache_config.max_entries)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear the session down; it must not be used afterwards.  Idempotent.

        Releases everything the session holds beyond its constructor
        arguments — today the autotuner's compiled-kernel cache; measurement
        executors are already env-scoped and closed by the strategies that
        open them.  :class:`repro.pool.SessionPool` relies on this for
        deterministic worker teardown, and ``with Session(...) as session:``
        closes on exit.
        """
        if self._closed:
            return
        self._closed = True
        self.autotuner.clear()

    def __enter__(self) -> "Session":
        self._ensure_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionClosed("session is closed")

    # ------------------------------------------------------------------
    # Derived sessions and small helpers
    # ------------------------------------------------------------------
    @property
    def gpu_name(self) -> str:
        return self.simulator.config.name

    def with_config(self, config: OptimizationConfig) -> "Session":
        """A sibling session sharing this session's backend and cache config."""
        return Session(
            gpu=self.simulator,
            config=config,
            measurement=self.measurement,
            cache=self.cache_config,
        )

    def _resolve_spec(self, spec: str | KernelSpec) -> KernelSpec:
        return get_spec(spec) if isinstance(spec, str) else spec

    def _resolve_shapes(self, spec: KernelSpec, shapes: dict | None) -> dict:
        return dict(shapes) if shapes is not None else dict(spec.shapes(self.config.scale))

    def key_for(self, spec: str | KernelSpec, shapes: dict | None = None) -> str:
        """The §4.2 cache key of a workload on this session's GPU."""
        from repro.core.jit import cache_key

        spec = self._resolve_spec(spec)
        return cache_key(self.gpu_name, spec.name, self._resolve_shapes(spec, shapes))

    # ------------------------------------------------------------------
    # compile / optimize / deploy / run
    # ------------------------------------------------------------------
    def compile(
        self,
        spec: str | KernelSpec,
        *,
        shapes: dict | None = None,
        config: dict | None = None,
        hooks: "SessionHooks | None" = None,
    ) -> CompiledKernel:
        """Stage 1 of the hierarchical search (§3.1): kernel-config autotuning
        plus compilation to the ``-O3`` SASS schedule.

        An explicit kernel ``config`` skips autotuning.  ``hooks.checkpoint``
        (when given) is polled before each candidate config is measured, so
        stage-1 autotuning is cancellable too.
        """
        self._ensure_open()
        spec = self._resolve_spec(spec)
        shapes = self._resolve_shapes(spec, shapes)
        if config is None and self.config.autotune:
            checkpoint = hooks.checkpoint if hooks is not None else None
            return self.autotuner.compile_best(spec, shapes=shapes, checkpoint=checkpoint)
        return compile_spec(spec, shapes=shapes, config=config)

    def optimize(
        self,
        spec: str | KernelSpec,
        *,
        shapes: dict | None = None,
        strategy: str | None = None,
        verify: str | bool | None = None,
        store: bool = True,
        hooks: "SessionHooks | None" = None,
    ) -> RunReport:
        """Full hierarchical optimization of one workload, cached on success.

        ``verify`` selects the verification mode (``"off"``, ``"final"``,
        ``"functional"`` or ``"paranoid"``; bools are accepted as
        ``"off"``/``"final"``) and defaults to the session config's mode.
        """
        self._ensure_open()
        spec = self._resolve_spec(spec)
        shapes = self._resolve_shapes(spec, shapes)
        compiled = self.compile(spec, shapes=shapes, hooks=hooks)
        return self.optimize_compiled(
            compiled, strategy=strategy, verify=verify, store=store, hooks=hooks
        )

    def optimize_compiled(
        self,
        compiled: CompiledKernel,
        *,
        strategy: str | None = None,
        verify: str | bool | None = None,
        store: bool = True,
        hooks: "SessionHooks | None" = None,
    ) -> RunReport:
        """Stage 2 (§3): schedule search on an already-compiled kernel.

        ``hooks`` installs per-run cancellation/progress callbacks into the
        strategy's measurement service (see :class:`SessionHooks`).
        """
        self._ensure_open()
        strategy_name = strategy or self.config.strategy
        verify_mode = normalize_verify_mode(verify, default=self.config.verify)
        policy = self.measurement
        if hooks is not None and hooks.any_set():
            policy = dataclasses.replace(
                policy,
                checkpoint=hooks.checkpoint,
                progress=hooks.progress,
                save_state=hooks.save_state,
                resume_state=hooks.resume_state,
            )
        search_started = time.perf_counter()
        outcome = get_strategy(strategy_name).run(
            StrategyContext(
                compiled=compiled,
                simulator=self.simulator,
                config=self.config,
                measurement=policy.to_measurement_config(),
                measurement_policy=policy,
            )
        )
        search_elapsed = time.perf_counter() - search_started

        verification: ProbabilisticTestResult | None = None
        best_kernel = outcome.best_kernel
        best_time_ms = outcome.best_time_ms
        diagnostics: list[dict] = []
        verified: bool | None = None
        verifier: ScheduleVerifier | None = None
        if verify_mode != "off":
            verifier = ScheduleVerifier(compiled.kernel)
            verified = True
            if verify_mode == "paranoid":
                seed_lint = verifier.lint_seed()
                if seed_lint.diagnostics:
                    _LOG.warning(
                        "%s: seed listing lint found %d finding(s):\n%s",
                        compiled.kernel.metadata.name,
                        len(seed_lint.diagnostics),
                        seed_lint.render(compiled.kernel.metadata.name),
                    )
                    diagnostics.extend(d.as_dict() for d in seed_lint.diagnostics)
            static = verifier.verify(best_kernel)
            diagnostics.extend(d.as_dict() for d in static.diagnostics)
            if not static.ok:
                _LOG.warning(
                    "%s/%s: best schedule failed static verification; falling back to -O3\n%s",
                    compiled.kernel.metadata.name,
                    strategy_name,
                    static.render(compiled.kernel.metadata.name),
                )
                best_kernel = compiled.kernel
                best_time_ms = outcome.baseline_time_ms
                verified = False
            else:
                verification = self.verify_kernel(compiled, best_kernel)
                if not verification.passed:
                    _LOG.warning(
                        "%s/%s: best schedule failed probabilistic testing (%s); "
                        "falling back to -O3",
                        compiled.kernel.metadata.name,
                        strategy_name,
                        verification.message,
                    )
                    best_kernel = compiled.kernel
                    best_time_ms = outcome.baseline_time_ms
                    verified = False
            if (
                verified
                and verify_mode in ("functional", "paranoid")
                and best_kernel is not compiled.kernel
            ):
                func_diff = self.functional_diff(compiled, best_kernel)
                if not func_diff.passed:
                    _LOG.warning(
                        "%s/%s: best schedule failed functional differential "
                        "verification (%s); falling back to -O3",
                        compiled.kernel.metadata.name,
                        strategy_name,
                        func_diff.message,
                    )
                    diagnostics.extend(d.as_dict() for d in func_diff.diagnostics)
                    best_kernel = compiled.kernel
                    best_time_ms = outcome.baseline_time_ms
                    verified = False

        artifact = self._make_artifact(compiled, outcome, best_kernel, best_time_ms, verification)
        if verify_mode == "paranoid" and verifier is not None and verified:
            splice_audit = self._verify_spliced_artifact(compiled, artifact, verifier)
            if splice_audit is not None and not splice_audit.ok:
                _LOG.warning(
                    "%s/%s: schedule disassembled from the spliced cubin failed "
                    "re-verification; falling back to -O3\n%s",
                    compiled.kernel.metadata.name,
                    strategy_name,
                    splice_audit.render(compiled.kernel.metadata.name),
                )
                diagnostics.extend(d.as_dict() for d in splice_audit.diagnostics)
                best_kernel = compiled.kernel
                best_time_ms = outcome.baseline_time_ms
                verified = False
                artifact = self._make_artifact(
                    compiled, outcome, best_kernel, best_time_ms, verification
                )
        key = self.key_for(compiled.spec, compiled.shapes)
        cached = False
        if store and self.cache is not None and not self.cache_config.readonly:
            self.cache.store(key, artifact)
            cached = True
        _LOG.info(
            "%s [%s on %s]: %.4f ms -> %.4f ms (%.2fx)",
            compiled.kernel.metadata.name,
            strategy_name,
            self.gpu_name,
            outcome.baseline_time_ms,
            best_time_ms,
            outcome.baseline_time_ms / best_time_ms if best_time_ms else 1.0,
        )
        details = dict(outcome.details)
        details["elapsed_s"] = search_elapsed
        details["evaluations_per_sec"] = (
            outcome.evaluations / search_elapsed if search_elapsed > 0 else float("inf")
        )
        details["verify_mode"] = verify_mode
        return RunReport(
            kernel=compiled.spec.name,
            gpu=self.gpu_name,
            strategy=strategy_name,
            shapes=dict(compiled.shapes),
            config=dict(compiled.config),
            baseline_time_ms=outcome.baseline_time_ms,
            best_time_ms=best_time_ms,
            evaluations=outcome.evaluations,
            verified=verified,
            diagnostics=tuple(diagnostics),
            cache_key=key,
            cached=cached,
            details=details,
            artifact=artifact,
        )

    def _make_artifact(
        self,
        compiled: CompiledKernel,
        outcome: StrategyOutcome,
        best_kernel,
        best_time_ms: float,
        verification: ProbabilisticTestResult | None,
    ) -> OptimizedKernel:
        history = outcome.details.get("history")
        result = OptimizationResult(
            kernel_name=compiled.kernel.metadata.name,
            baseline_time_ms=outcome.baseline_time_ms,
            best_time_ms=best_time_ms,
            best_kernel=best_kernel,
            history=history if isinstance(history, TrainingHistory) else None,
            verification=verification,
            episodes=list(outcome.details.get("episodes", [])),
        )
        return OptimizedKernel(
            compiled=compiled,
            optimized=compiled.with_kernel(best_kernel),
            cubin=splice_kernel(compiled.cubin, best_kernel),
            result=result,
        )

    def _verify_spliced_artifact(
        self,
        compiled: CompiledKernel,
        artifact: OptimizedKernel,
        verifier: ScheduleVerifier,
    ) -> VerificationResult | None:
        """Paranoid-mode audit: disassemble the spliced cubin and re-verify.

        Returns ``None`` when the cubin cannot be disassembled (logged; the
        splice format is exercised by its own tests, so this is best-effort).
        """
        try:
            respliced = disassemble(artifact.cubin, kernel_name=compiled.kernel.metadata.name)
        except Exception as exc:
            _LOG.warning(
                "%s: could not disassemble the spliced cubin for paranoid "
                "re-verification: %s",
                compiled.kernel.metadata.name,
                exc,
            )
            return None
        result = verifier.verify(respliced)
        roundtrip = audit_control_roundtrip(respliced)
        if roundtrip:
            result = dataclasses.replace(
                result, diagnostics=result.diagnostics + tuple(roundtrip)
            )
        return result

    def deploy(
        self,
        spec: str | KernelSpec,
        *,
        shapes: dict | None = None,
        cache_dir: str | Path | None = None,
    ) -> CompiledKernel:
        """Deploy-time lookup (§4.2): load the cached optimized schedule."""
        self._ensure_open()
        from repro.core.jit import CubinCache

        spec = self._resolve_spec(spec)
        shapes = self._resolve_shapes(spec, shapes)
        cache = CubinCache(cache_dir) if cache_dir is not None else self.cache
        if cache is None:
            raise OptimizationError(
                "session has no cubin cache (CacheConfig.enabled=False) and no cache_dir was given"
            )
        entry = cache.load(self.key_for(spec, shapes))
        meta = entry.load_meta()
        compiled = compile_spec(spec, shapes=shapes, config=meta["config"])
        kernel = disassemble(entry.load_cubin(), kernel_name=compiled.kernel.metadata.name)
        return compiled.with_kernel(kernel)

    def run(
        self,
        spec: str | KernelSpec,
        inputs: dict | None = None,
        *,
        shapes: dict | None = None,
    ) -> KernelRun:
        """Execute a workload: from the cache when available, else the -O3 build."""
        self._ensure_open()
        spec = self._resolve_spec(spec)
        shapes = self._resolve_shapes(spec, shapes)
        if self.cache is not None and self.cache.has(self.key_for(spec, shapes)):
            compiled = self.deploy(spec, shapes=shapes)
        else:
            compiled = compile_spec(spec, shapes=shapes)
        return compiled.run(self.simulator, inputs)

    def measure(
        self,
        compiled: CompiledKernel,
        inputs: dict | None = None,
    ) -> KernelTiming:
        """Measure a compiled kernel under this session's measurement policy."""
        return compiled.measure(
            self.simulator, inputs, measurement=self.measurement.to_measurement_config()
        )

    # ------------------------------------------------------------------
    # Verification (§4.1)
    # ------------------------------------------------------------------
    def verify_kernel(self, compiled: CompiledKernel, kernel) -> ProbabilisticTestResult:
        """Probabilistic testing of a schedule against the numpy reference."""
        tester = ProbabilisticTester(
            simulator=self.simulator,
            input_factory=lambda rng: compiled.spec.make_inputs(rng, compiled.shapes),
            reference=lambda inputs: compiled.reference(inputs),
            grid=compiled.grid,
            param_order=compiled.param_order,
            output_names=list(compiled.spec.output_names),
        )
        return tester.run(kernel, trials=self.config.verify_trials, seed=self.config.seed)

    def functional_diff(self, compiled: CompiledKernel, kernel) -> FunctionalDiffResult:
        """Differential execution of ``kernel`` against the -O3 seed schedule.

        Both schedules run through the functional engine on identical random
        inputs; any bit-level output difference is a ``V701`` error.  This is
        the ``verify="functional"`` tier — strictly sharper than probabilistic
        testing, whose fp16 tolerances can forgive a semantics-breaking
        reorder.
        """
        differ = FunctionalDiffer.from_compiled(compiled, self.simulator)
        return differ.diff(
            compiled.kernel,
            kernel,
            trials=self.config.verify_trials,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    # Batched optimization
    # ------------------------------------------------------------------
    def optimize_many(
        self,
        specs: Iterable[str | KernelSpec],
        *,
        jobs: int = 1,
        strategy: str | None = None,
        verify: str | bool | None = None,
        store: bool = True,
        on_error: str = "report",
    ) -> list[RunReport]:
        """Fan one optimization run out over many workloads.

        Reports come back in input order.  ``jobs > 1`` runs workloads on a
        thread pool; each workload compiles, searches and verifies
        independently, and cache writes go to per-key files so concurrent
        stores do not collide.

        A failing workload no longer discards the rest of the batch.  With
        ``on_error="report"`` (the default) it yields a failed
        :class:`RunReport` (``report.failed`` true, ``report.error`` set) in
        its input-order slot; with ``on_error="raise"`` every job still runs
        to completion, then one :class:`OptimizationError` is raised carrying
        the successful reports on its ``reports`` attribute.
        """
        self._ensure_open()
        if on_error not in ("report", "raise"):
            raise ValueError(f"on_error must be 'report' or 'raise', got {on_error!r}")
        resolved: Sequence[KernelSpec] = [self._resolve_spec(spec) for spec in specs]

        def one(spec: KernelSpec) -> RunReport:
            try:
                return self.optimize(spec, strategy=strategy, verify=verify, store=store)
            except Exception as exc:
                _LOG.warning("optimize_many: %s failed: %s", spec.name, exc)
                return RunReport.from_error(
                    kernel=spec.name,
                    gpu=self.gpu_name,
                    strategy=strategy or self.config.strategy,
                    error=f"{type(exc).__name__}: {exc}",
                )

        if jobs <= 1 or len(resolved) <= 1:
            reports = [one(spec) for spec in resolved]
        else:
            with ThreadPoolExecutor(max_workers=min(jobs, len(resolved))) as pool:
                futures = [pool.submit(one, spec) for spec in resolved]
                reports = [future.result() for future in futures]

        failures = [report for report in reports if report.failed]
        if failures and on_error == "raise":
            error = OptimizationError(
                f"{len(failures)}/{len(reports)} workloads failed: "
                + "; ".join(f"{report.kernel}: {report.error}" for report in failures)
            )
            error.reports = [report for report in reports if not report.failed]
            raise error
        return reports
