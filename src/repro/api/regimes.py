"""Measurement-regime registry: named :class:`MeasurementPolicy` presets.

The paper measures with one fixed CUDA-events protocol (§3.6); the harness
wants to sweep *regimes* — deterministic vs. noisy measurement, full-length
vs. quick smoke protocols — without every consumer hand-building
:class:`~repro.api.config.MeasurementPolicy` objects.  Same registry idiom
as :mod:`repro.api.backends`: canonical names, case-insensitive aliases,
tag-filtered enumeration.  The scenario layer (:mod:`repro.scenarios`)
references regimes by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.api.config import MeasurementPolicy


@dataclass(frozen=True, slots=True)
class RegimeSpec:
    """One registered measurement regime."""

    name: str
    description: str
    policy: MeasurementPolicy
    aliases: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()


_REGIMES: dict[str, RegimeSpec] = {}
_ALIASES: dict[str, str] = {}


def register_regime(
    name: str,
    policy: MeasurementPolicy,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
    tags: tuple[str, ...] = (),
) -> RegimeSpec:
    """Register a measurement policy under ``name`` (and its aliases)."""
    spec = RegimeSpec(
        name=name, description=description, policy=policy,
        aliases=tuple(aliases), tags=tuple(tags),
    )
    _REGIMES[name] = spec
    _ALIASES[name.lower()] = name
    for alias in spec.aliases:
        _ALIASES[alias.lower()] = name
    return spec


def available_regimes(*, tags: Iterable[str] | None = None) -> tuple[str, ...]:
    """Canonical names of every registered regime, optionally tag-filtered."""
    names = sorted(_REGIMES)
    if tags is not None:
        wanted = set(tags)
        names = [name for name in names if wanted <= set(_REGIMES[name].tags)]
    return tuple(names)


def regime_spec(name: str) -> RegimeSpec:
    """Look a regime up by canonical name or alias (case-insensitive)."""
    try:
        return _REGIMES[_ALIASES[name.lower()]]
    except KeyError as exc:
        raise KeyError(
            f"unknown measurement regime {name!r}; available: {list(available_regimes())}"
        ) from exc


# ---------------------------------------------------------------------------
# Built-in regimes
# ---------------------------------------------------------------------------
register_regime(
    "default",
    MeasurementPolicy(),
    aliases=("deterministic",),
    description="The §3.6 protocol: 100 warm-up + 100 timed launches, no noise.",
    tags=("deterministic",),
)

register_regime(
    "noisy",
    MeasurementPolicy(noise_std=0.01),
    aliases=("noise-1pct",),
    description="Measurement noise at the paper's reported run-to-run std (1%); "
    "stresses search robustness against misleading rewards.",
    tags=("adversarial",),
)

register_regime(
    "quick",
    MeasurementPolicy(warmup_iterations=10, measure_iterations=10),
    aliases=("smoke",),
    description="Shortened deterministic protocol for smoke runs and CI.",
    tags=("deterministic", "smoke"),
)

register_regime(
    "chaos",
    MeasurementPolicy(noise_std=0.02, warmup_iterations=25, measure_iterations=25),
    aliases=("fault-injection",),
    description="Shortened noisy protocol for fault-injection runs: enough "
    "measurements per job to land mid-flight crashes and checkpoints, 2% "
    "noise so retried/resumed searches cannot rely on bit-identical timings.",
    tags=("chaos",),
)
