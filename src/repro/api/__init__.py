"""Public API of the CuAsmRL reproduction: the Session facade and registries.

This package is the single supported entry point for the paper's
optimize-once / deploy-from-cache workflow (§4):

* :class:`Session` — owns the GPU backend, cubin cache and measurement
  policy; ``compile`` / ``optimize`` / ``deploy`` / ``optimize_many``.
* Strategy registry — ``strategy="ppo"`` (§3) and the §7 baselines
  (``"greedy"``, ``"random"``, ``"evolutionary"``) behind one interface;
  extend with :func:`register_strategy`.
* Backend registry — simulated GPU targets keyed by name; extend with
  :func:`register_backend`.
* Regime / preset registries — named :class:`MeasurementPolicy` and
  :class:`OptimizationConfig` presets (:func:`register_regime`,
  :func:`register_preset`); composed with kernels and backends into the
  declarative scenario matrix of :mod:`repro.scenarios`.

Scale-out lives in :mod:`repro.pool`: a :class:`~repro.pool.SessionPool`
shards ``optimize_many`` workloads across several worker sessions and returns
a :class:`PoolReport`; :class:`PoolConfig` here shapes it.

The older ``repro.core.jit`` / ``CuAsmRLOptimizer`` / ``baselines.search``
entry points remain as thin deprecated shims over this facade.
"""

from repro.api.backends import (
    BackendSpec,
    available_backends,
    backend_spec,
    create_backend,
    register_backend,
    resolve_backend,
)
from repro.api.config import (
    CacheConfig,
    MeasurementPolicy,
    OptimizationConfig,
    PoolConfig,
    RemoteConfig,
    RetryPolicy,
    ServeConfig,
)
from repro.api.presets import (
    PresetSpec,
    available_presets,
    preset_spec,
    register_preset,
)
from repro.api.regimes import (
    RegimeSpec,
    available_regimes,
    regime_spec,
    register_regime,
)
from repro.api.report import JobRecord, JobStatus, PoolReport, RunReport, WorkerReport
from repro.api.session import Session, SessionHooks
from repro.api.strategies import (
    SearchStrategy,
    StrategyContext,
    StrategyOutcome,
    available_strategies,
    get_strategy,
    register_strategy,
)

__all__ = [
    "Session",
    "SessionHooks",
    "RunReport",
    "PoolReport",
    "WorkerReport",
    "JobStatus",
    "JobRecord",
    "OptimizationConfig",
    "MeasurementPolicy",
    "CacheConfig",
    "PoolConfig",
    "ServeConfig",
    "RemoteConfig",
    "RetryPolicy",
    "SearchStrategy",
    "StrategyContext",
    "StrategyOutcome",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "BackendSpec",
    "register_backend",
    "backend_spec",
    "create_backend",
    "resolve_backend",
    "available_backends",
    "RegimeSpec",
    "register_regime",
    "regime_spec",
    "available_regimes",
    "PresetSpec",
    "register_preset",
    "preset_spec",
    "available_presets",
]
