"""Optimization-preset registry: named :class:`OptimizationConfig` presets.

Completes the registry quartet (kernels, backends, regimes, optimization
presets) the scenario layer composes.  Same idiom as
:mod:`repro.api.backends`: canonical names, case-insensitive aliases,
tag-filtered enumeration.  Scenarios reference presets by name and may layer
field overrides on top (``OptimizationConfig.replace``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.api.config import OptimizationConfig


@dataclass(frozen=True, slots=True)
class PresetSpec:
    """One registered optimization preset."""

    name: str
    description: str
    config: OptimizationConfig
    aliases: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()


_PRESETS: dict[str, PresetSpec] = {}
_ALIASES: dict[str, str] = {}


def register_preset(
    name: str,
    config: OptimizationConfig,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
    tags: tuple[str, ...] = (),
) -> PresetSpec:
    """Register an optimization config under ``name`` (and its aliases)."""
    spec = PresetSpec(
        name=name, description=description, config=config,
        aliases=tuple(aliases), tags=tuple(tags),
    )
    _PRESETS[name] = spec
    _ALIASES[name.lower()] = name
    for alias in spec.aliases:
        _ALIASES[alias.lower()] = name
    return spec


def available_presets(*, tags: Iterable[str] | None = None) -> tuple[str, ...]:
    """Canonical names of every registered preset, optionally tag-filtered."""
    names = sorted(_PRESETS)
    if tags is not None:
        wanted = set(tags)
        names = [name for name in names if wanted <= set(_PRESETS[name].tags)]
    return tuple(names)


def preset_spec(name: str) -> PresetSpec:
    """Look a preset up by canonical name or alias (case-insensitive)."""
    try:
        return _PRESETS[_ALIASES[name.lower()]]
    except KeyError as exc:
        raise KeyError(
            f"unknown optimization preset {name!r}; available: {list(available_presets())}"
        ) from exc


# ---------------------------------------------------------------------------
# Built-in presets
# ---------------------------------------------------------------------------
register_preset(
    "default",
    OptimizationConfig(),
    aliases=("ppo",),
    description="The paper's §3 configuration: PPO over the assembly game, "
    "stage-1 autotuning, final verification.",
)

register_preset(
    "smoke",
    OptimizationConfig(
        strategy="greedy",
        search_budget=8,
        episode_length=8,
        autotune=False,
        verify="final",
    ),
    aliases=("greedy-smoke",),
    description="Cheapest useful search: short greedy walk, no autotuning; "
    "the scenario suite runner's default.",
    tags=("smoke",),
)

register_preset(
    "ppo-short",
    OptimizationConfig(
        strategy="ppo",
        episode_length=8,
        train_timesteps=64,
    ),
    description="Abbreviated PPO run for quick end-to-end RL coverage.",
    tags=("smoke",),
)

register_preset(
    "thorough",
    OptimizationConfig(
        strategy="evolutionary",
        population=8,
        generations=8,
        search_budget=128,
        verify="paranoid",
    ),
    aliases=("evolutionary",),
    description="Widest training-free search with paranoid verification.",
)
