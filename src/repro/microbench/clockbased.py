"""Clock-based microbenchmarking (Listing 7 of the paper).

§4.3 argues clock-based measurements *underestimate* stall counts: the second
``CS2R SR_CLOCKLO`` read is not guaranteed to happen after the timed sequence
has fully completed, so dividing the elapsed clock by the instruction count
gives fewer cycles than the dependence actually needs.  This module
reproduces that experiment so the discrepancy can be shown next to the
dependency-based result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sass.kernel import KernelMetadata, SassKernel
from repro.sass.parser import parse_listing
from repro.sim.gpu import GPUSimulator
from repro.sim.launch import GridConfig


@dataclass
class ClockBasedResult:
    opcode: str
    sequence_length: int
    elapsed_cycles: float
    cycles_per_instruction: float


def clock_based_stall_estimate(
    opcode: str = "IADD3",
    *,
    sequence_length: int = 10,
    issue_stall: int = 1,
    simulator: GPUSimulator | None = None,
) -> ClockBasedResult:
    """Time a back-to-back sequence of ``opcode`` with CS2R clock reads.

    Issuing the sequence with a small stall count (the default 1, as a naive
    clock benchmark would) measures issue throughput, not result latency —
    reproducing the ~2.6 cycle underestimate the paper reports for IADD3.
    """
    simulator = simulator or GPUSimulator()
    body = "\n".join(
        f"[B------:R-:W-:-:S{issue_stall:02d}] {opcode} R{10 + (i % 4)}, R8, 0x1, RZ ;"
        for i in range(sequence_length)
    )
    text = f"""
[B------:R-:W-:-:S04] MOV R8, 0x1 ;
[B------:R-:W-:-:S04] MOV R4, c[0x0][0x160] ;
[B------:R-:W-:-:S02] CS2R R2, SR_CLOCKLO ;
{body}
[B------:R-:W-:-:S04] CS2R R6, SR_CLOCKLO ;
[B------:R-:W-:-:S05] IADD3 R6, -R2, R6, RZ ;
[B------:R0:W-:-:S02] STG.E.32 [R4.64], R6 ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel(parse_listing(text), metadata=KernelMetadata(name="clockbench", num_warps=1))
    out = np.zeros(64, dtype=np.float32)
    run = simulator.run(
        kernel, GridConfig(grid=(1, 1, 1), num_warps=1), {"out": out}, ["out"], output_names=["out"]
    )
    elapsed = float(run.outputs["out"].reshape(-1)[0])
    return ClockBasedResult(
        opcode=opcode,
        sequence_length=sequence_length,
        elapsed_cycles=elapsed,
        cycles_per_instruction=elapsed / sequence_length,
    )
