"""Microbenchmarking of instruction stall counts (§4.3, Table 1)."""

from repro.microbench.clockbased import clock_based_stall_estimate
from repro.microbench.harness import (
    MicrobenchResult,
    build_stall_table,
    measure_stall_count,
)

__all__ = [
    "MicrobenchResult",
    "measure_stall_count",
    "build_stall_table",
    "clock_based_stall_estimate",
]
