"""Dependency-based stall-count microbenchmarks (§4.3 of the paper).

The methodology is exactly the paper's: write a tiny SASS kernel in which a
store consumes the output of the instruction under test, gradually lower the
instruction's stall count, and find the smallest stall count for which the
stored value still matches the expected value.  Because the simulator models
timing-aware register visibility, an under-stalled consumer reads the stale
value and the mismatch is detected — the same observable a real A100 gives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.latency_table import StallCountTable
from repro.sass.control import MAX_STALL
from repro.sass.kernel import KernelMetadata, SassKernel
from repro.sass.parser import parse_listing
from repro.sim.gpu import GPUSimulator
from repro.sim.launch import GridConfig


@dataclass
class MicrobenchResult:
    """Measured stall count for one opcode."""

    opcode: str
    stall_count: int
    trials: list[tuple[int, bool]]


#: Microbenchmark templates: the instruction under test produces R15 (from
#: R14 = 3), and an STG stores R15 to the output buffer.  ``{stall}`` is the
#: stall count being probed; ``expected(x)`` gives the value the store should
#: see when the dependence is honoured.
_TEMPLATES: dict[str, tuple[str, float]] = {
    "MOV": ("[B------:R-:W-:-:S{stall:02d}] MOV R15, 0x7 ;", 7.0),
    "IADD3": ("[B------:R-:W-:-:S{stall:02d}] IADD3 R15, R14, 0x5, RZ ;", 8.0),
    "IADD3.X": ("[B------:R-:W-:-:S{stall:02d}] IADD3.X R15, R14, 0x5, RZ ;", 8.0),
    "IMAD": ("[B------:R-:W-:-:S{stall:02d}] IMAD R15, R14, 0x4, RZ ;", 12.0),
    "IMAD.IADD": ("[B------:R-:W-:-:S{stall:02d}] IMAD.IADD R15, R14, 0x1, R14 ;", 6.0),
    "IMAD.WIDE": ("[B------:R-:W-:-:S{stall:02d}] IMAD.WIDE R16, R14, 0x4, RZ ;", 12.0),
    "IMAD.WIDE.U32": ("[B------:R-:W-:-:S{stall:02d}] IMAD.WIDE.U32 R16, R14, 0x8, RZ ;", 24.0),
    "IABS": ("[B------:R-:W-:-:S{stall:02d}] IABS R15, -R14 ;", 3.0),
    "IMNMX": ("[B------:R-:W-:-:S{stall:02d}] IMNMX R15, R14, 0x2, PT ;", 2.0),
    "SEL": ("[B------:R-:W-:-:S{stall:02d}] SEL R15, R14, 0x9, PT ;", 3.0),
    "LEA": ("[B------:R-:W-:-:S{stall:02d}] LEA R15, R14, 0x1, 0x2 ;", 13.0),
    "FADD": ("[B------:R-:W-:-:S{stall:02d}] FADD R15, R14, 2.5 ;", 5.5),
    "HADD2": ("[B------:R-:W-:-:S{stall:02d}] HADD2 R15, R14, 1.0 ;", 4.0),
    "FMUL": ("[B------:R-:W-:-:S{stall:02d}] FMUL R15, R14, 2.0 ;", 6.0),
    "FFMA": ("[B------:R-:W-:-:S{stall:02d}] FFMA R15, R14, 2.0, 1.0 ;", 7.0),
    "SHF": ("[B------:R-:W-:-:S{stall:02d}] SHF.L.U32 R15, R14, 0x2, RZ ;", 12.0),
    "LOP3": ("[B------:R-:W-:-:S{stall:02d}] LOP3.AND R15, R14, 0x2, RZ ;", 2.0),
}

_PROLOGUE = """
[B------:R-:W-:-:S04] MOV R14, 0x3 ;
[B------:R-:W-:-:S04] MOV R4, c[0x0][0x160] ;
"""

_EPILOGUE = """
[B------:R0:W-:-:S02] STG.E.32 [R4.64], {result_reg} ;
[B------:R-:W-:-:S05] EXIT ;
"""


def _build_kernel(opcode: str, stall: int) -> SassKernel:
    template, _ = _TEMPLATES[opcode]
    result_reg = "R16" if "WIDE" in opcode else "R15"
    text = _PROLOGUE + template.format(stall=stall) + "\n" + _EPILOGUE.format(result_reg=result_reg)
    lines = parse_listing(text)
    return SassKernel(lines, metadata=KernelMetadata(name=f"ub_{opcode.replace('.', '_')}", num_warps=1))


def run_microbench_kernel(opcode: str, stall: int, simulator: GPUSimulator | None = None) -> bool:
    """Run one trial; returns True when the stored value matches the expectation."""
    simulator = simulator or GPUSimulator()
    _, expected = _TEMPLATES[opcode]
    kernel = _build_kernel(opcode, stall)
    out = np.zeros(64, dtype=np.float32)
    run = simulator.run(kernel, GridConfig(grid=(1, 1, 1), num_warps=1), {"out": out}, ["out"], output_names=["out"])
    observed = float(run.outputs["out"].reshape(-1)[0])
    return abs(observed - expected) < 1e-3


def measure_stall_count(opcode: str, *, simulator: GPUSimulator | None = None) -> MicrobenchResult:
    """Dependency-based stall-count measurement for one opcode."""
    if opcode not in _TEMPLATES:
        raise KeyError(f"no microbenchmark template for {opcode!r}; available: {sorted(_TEMPLATES)}")
    simulator = simulator or GPUSimulator()
    trials: list[tuple[int, bool]] = []
    minimal = MAX_STALL
    for stall in range(MAX_STALL, 0, -1):
        ok = run_microbench_kernel(opcode, stall, simulator)
        trials.append((stall, ok))
        if ok:
            minimal = stall
        else:
            break
    return MicrobenchResult(opcode=opcode, stall_count=minimal, trials=trials)


def build_stall_table(opcodes=None, *, simulator: GPUSimulator | None = None) -> StallCountTable:
    """Re-derive Table 1 by microbenchmarking every templated opcode."""
    simulator = simulator or GPUSimulator()
    table = StallCountTable()
    for opcode in opcodes or sorted(_TEMPLATES):
        result = measure_stall_count(opcode, simulator=simulator)
        table.record(opcode, result.stall_count)
    return table


def available_opcodes() -> list[str]:
    return sorted(_TEMPLATES)
