"""Pytest root conftest.

Makes the test and benchmark suites runnable straight from a source checkout
(``pytest tests/``) even when the package has not been pip-installed, by
putting ``src/`` on ``sys.path`` ahead of site-packages.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
