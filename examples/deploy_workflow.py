#!/usr/bin/env python
"""Offline-search / deploy-time-lookup workflow (§4.2 of the paper).

First invocation: ``kernel.optimize()`` runs the hierarchical search and
caches the optimized cubin keyed by GPU type, workload and shapes.
Deployment: ``kernel(...)`` (or ``kernel.load()``) looks the cubin up and runs
it with zero training overhead — the one-line ``@cuasmrl.jit`` change of
Listing 4/5.

Run with:  python examples/deploy_workflow.py
"""

import tempfile

import numpy as np

from repro.core import CuAsmRLOptimizer, jit
from repro.sim import GPUSimulator, compare_outputs
from repro.triton import get_spec
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    simulator = GPUSimulator()
    spec = get_spec("softmax")

    with tempfile.TemporaryDirectory() as cache_dir:
        # The Listing-4 analogue: wrap the kernel once with CuAsmRL's jit.
        kernel = jit(
            spec,
            ret_ptr=1,
            cache_dir=cache_dir,
            simulator=simulator,
            optimizer=CuAsmRLOptimizer(simulator, train_timesteps=64, episode_length=8, autotune=False),
            scale="test",
        )

        # 1. Invoke optimization (offline, one-time cost).
        optimized = kernel.optimize(verify=True)
        print(f"optimized {spec.name}: speedup {optimized.speedup:.3f}x, "
              f"cubin cached under {cache_dir}")

        # 2. Deploy: look up the cached cubin and execute it.
        deployed = kernel.load()
        inputs = deployed.make_inputs(seed_or_rng=42)
        run = kernel(inputs)
        reference = deployed.reference(inputs)["out"]
        ok, max_err, _ = compare_outputs(run.outputs["out"], reference)
        print(f"deployed run matches the numpy reference: {ok} (max abs err {max_err:.2e})")

        # 3. The deployed schedule is at least as fast as the -O3 build.
        baseline_ms = deployed.with_kernel(optimized.compiled.kernel).measure(simulator).time_ms
        deployed_ms = deployed.measure(simulator).time_ms
        print(f"deployed: {deployed_ms*1e3:.2f} us   -O3 baseline: {baseline_ms*1e3:.2f} us")


if __name__ == "__main__":
    main()
