#!/usr/bin/env python
"""Offline-search / deploy-time-lookup workflow (§4.2 of the paper).

First invocation: ``session.optimize`` runs the hierarchical search and
caches the optimized cubin keyed by GPU type, workload and shapes.
Deployment: ``session.deploy`` / ``session.run`` look the cubin up and run it
with zero training overhead — the one-line ``@cuasmrl.jit`` change of
Listing 4/5, expressed through the ``repro.api`` facade.

Run with:  python examples/deploy_workflow.py
"""

import tempfile

from repro.api import OptimizationConfig, Session
from repro.sim import compare_outputs
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()

    with tempfile.TemporaryDirectory() as cache_dir:
        session = Session(
            gpu="A100-sim",
            cache_dir=cache_dir,
            config=OptimizationConfig(
                scale="test",
                episode_length=8,
                train_timesteps=64,
                autotune=False,
            ),
        )

        # 1. Invoke optimization (offline, one-time cost).
        report = session.optimize("softmax")
        print(f"optimized softmax: speedup {report.speedup:.3f}x, "
              f"cubin cached as {report.cache_key}")

        # 2. Deploy: look up the cached cubin and execute it.
        deployed = session.deploy("softmax")
        inputs = deployed.make_inputs(seed_or_rng=42)
        run = session.run("softmax", inputs)
        reference = deployed.reference(inputs)["out"]
        ok, max_err, _ = compare_outputs(run.outputs["out"], reference)
        print(f"deployed run matches the numpy reference: {ok} (max abs err {max_err:.2e})")

        # 3. The deployed schedule is at least as fast as the -O3 build.
        baseline = report.artifact.compiled
        baseline_ms = session.measure(baseline).time_ms
        deployed_ms = session.measure(deployed).time_ms
        print(f"deployed: {deployed_ms*1e3:.2f} us   -O3 baseline: {baseline_ms*1e3:.2f} us")


if __name__ == "__main__":
    main()
