#!/usr/bin/env python
"""Remote serving: HTTP front door, durable restarts, quotas.

Boots ``python -m repro.remote.serve`` as a real subprocess, drives it with
:class:`repro.remote.RemoteClient` (submit → stream SSE events → result),
then **kills the server and restarts it on the same cache directory**: the
job journal replays the finished records, so the old job id still answers
``status``/``result`` and an identical re-submit is an instant result-store
hit — no schedule search re-runs.

Run with:  python examples/serve_http.py
"""

import contextlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.errors import QuotaExceeded
from repro.remote import RemoteClient

SERVER_ARGS = [
    "--strategy", "greedy", "--scale", "test", "--budget", "16",
    "--no-autotune", "--no-verify",
    "--tenant-tokens", "8",
    "--job-ttl-s", "3600",
]


def boot(cache_dir: str, extra: tuple[str, ...] = ()) -> tuple[subprocess.Popen, str]:
    """Start the server on an ephemeral port and wait for its READY line."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.remote.serve",
         "--cache-dir", cache_dir, "--port", "0", *SERVER_ARGS, *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = process.stdout.readline().strip()
    if not line.startswith("READY "):
        process.terminate()
        raise RuntimeError(f"server did not come up: {line!r}")
    url = dict(part.split("=", 1) for part in line.split()[1:])["url"]
    print(f"   server up at {url}")
    return process, url


def _cache_dir():
    """A temp dir, unless REPRO_SMOKE_DIR pins one (CI keeps the journal
    there and uploads it as an artifact)."""
    pinned = os.environ.get("REPRO_SMOKE_DIR")
    if pinned:
        Path(pinned).mkdir(parents=True, exist_ok=True)
        return contextlib.nullcontext(pinned)
    return tempfile.TemporaryDirectory()


def _wait_for_checkpoint(journal: Path, job_id: str, timeout_s: float = 120.0) -> None:
    """Poll the journal until a checkpoint line for ``job_id`` is durable."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if journal.exists():
            for line in journal.read_text().splitlines():
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line mid-write
                if payload.get("kind") == "checkpoint" and payload.get("job_id") == job_id:
                    return
        time.sleep(0.05)
    raise RuntimeError(f"no checkpoint for {job_id} within {timeout_s}s")


def main() -> None:
    with _cache_dir() as cache_dir:
        print("== boot the server")
        server, url = boot(cache_dir)
        try:
            client = RemoteClient(url, tenant="demo")

            print("== submit over HTTP and stream SSE progress events")
            handle = client.submit("softmax")
            for event in handle.events():
                print(f"   [{event['seq']:03d}] {event['job_id']} {event['kind']}")
            report = handle.result(timeout=300)
            print(f"   {handle.job_id} {report.kernel}: "
                  f"{report.baseline_time_ms:.4f} -> {report.best_time_ms:.4f} ms "
                  f"({report.speedup:.2f}x)")
            first_id = handle.job_id

            print("== per-tenant quota: a greedy tenant gets HTTP 429")
            try:
                while True:
                    client.submit("rmsnorm", cost=4.0)
            except QuotaExceeded as exc:
                print(f"   rejected (quota): job_id={exc.job_id} tenant={exc.tenant}")
        finally:
            print("== kill the server process")
            server.terminate()
            server.wait(timeout=30)

        journal = Path(cache_dir) / "serve-journal.jsonl"
        print(f"   journal survives: {journal.name}, "
              f"{len(journal.read_text().splitlines())} line(s)")

        print("== restart on the same cache dir: the journal replays")
        server, url = boot(cache_dir)
        try:
            client = RemoteClient(url, tenant="demo")
            record = client.status(first_id)
            print(f"   old job {first_id}: status={record.status.value} "
                  f"replayed={record.replayed}")
            replayed = client.result(first_id, timeout=10)
            print(f"   old result still served: best={replayed.best_time_ms:.4f} ms")

            start = time.perf_counter()
            again = client.submit("softmax")
            report = again.result(timeout=60)
            elapsed = time.perf_counter() - start
            record = again.record()
            print(f"   re-submit {again.job_id}: from_store={record.from_store} "
                  f"evaluations={report.evaluations} in {elapsed:.2f}s")

            metrics = client.metrics()
            print(f"== metrics: {metrics['queue']['store_hits']} store hit(s), "
                  f"{metrics['server']['replayed_records']} replayed record(s), "
                  f"journal at {metrics['server']['journal']['path']}")
        finally:
            server.terminate()
            server.wait(timeout=30)

        print("== chaos: SIGKILL the server mid-search, resume from checkpoint")
        # Slow every measurement down (chaos flag) so the kill window is wide;
        # greedy on bmm journals a checkpoint after each committed move.
        server, url = boot(cache_dir, extra=("--fault-seed", "1234",
                                             "--fault-delay-ms", "100"))
        killed = False
        try:
            client = RemoteClient(url, tenant="demo")
            victim = client.submit("bmm")
            _wait_for_checkpoint(journal, victim.job_id)
            print(f"   {victim.job_id} checkpointed; kill -9 the server now")
            server.kill()  # no graceful shutdown: no terminal journal line
            server.wait(timeout=30)
            killed = True
        finally:
            if not killed:
                server.terminate()
                server.wait(timeout=30)

        server, url = boot(cache_dir)
        try:
            client = RemoteClient(url, tenant="demo")
            report = client.result(victim.job_id, timeout=300)
            record = client.status(victim.job_id)
            print(f"   {victim.job_id}: status={record.status.value} "
                  f"resumed={record.resumed} evaluations={report.evaluations} "
                  f"(budget honored: {report.evaluations <= 16 + 1})")
            assert record.resumed and not report.failed
            resumed_jobs = client.metrics()["server"]["resumed_jobs"]
            print(f"   metrics: {resumed_jobs} job(s) resumed after the kill")
        finally:
            server.terminate()
            server.wait(timeout=30)
    print("done")


if __name__ == "__main__":
    main()
