#!/usr/bin/env python
"""Serving: submit jobs to an async queue, stream progress, cancel, re-hit.

The serve layer is the front door of the deployment story: instead of
blocking on a whole ``optimize_many`` batch, callers ``submit()`` workloads
to a :class:`repro.serve.JobQueue` over the pool and get handles back
immediately.  A dispatcher feeds per-worker queues, idle workers steal
queued jobs from deep sibling queues, every job streams
``queued → assigned → running → measured(n) → done`` events, and finished
results persist in a pool-level store so re-submitting a
``(workload, backend)`` pair resolves instantly from its cache key.

Run with:  python examples/serve_async.py
"""

import tempfile
import threading

from repro.api import OptimizationConfig, ServeConfig
from repro.pool import SessionPool
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    config = OptimizationConfig(
        strategy="greedy",  # deterministic and quick for a demo; "ppo" works too
        scale="test",
        search_budget=16,
        episode_length=8,
        autotune=False,
        verify=False,
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        with SessionPool(
            ["A100-sim", "A100-sim", "A30-sim"],  # twin A100s steal from each other
            cache_dir=cache_dir,
            config=config,
        ) as pool:
            queue = pool.serve(ServeConfig(progress_every=8))

            # A pool-wide subscriber tails every job's lifecycle concurrently.
            feed = queue.subscribe()

            def tail() -> None:
                for event in feed:
                    extra = f" n={event.measured}" if event.kind == "measured" else ""
                    stolen = " (stolen!)" if event.stolen else ""
                    print(f"  [{event.seq:03d}] {event.job_id} {event.kind}"
                          f"{extra}{stolen} {event.worker or ''}")

            tailer = threading.Thread(target=tail, daemon=True)
            tailer.start()

            print("== submit_many returns immediately; handles resolve as jobs finish")
            handles = queue.submit_many(["mmLeakyReLu", "rmsnorm", "bmm", "softmax"])
            print(f"   submitted {len(handles)} jobs; first status: {handles[0].status.value}")

            # Cancel one job right away: it is pulled back before (or stopped
            # cooperatively while) running.
            doomed = queue.submit("mmLeakyReLu", backend="A30")
            print(f"   cancel {doomed.job_id}: {doomed.cancel()}")

            for handle in handles:
                report = handle.result(timeout=300)
                print(f"   {handle.job_id} {report.kernel:12s} on {report.gpu}: "
                      f"{report.baseline_time_ms:.4f} -> {report.best_time_ms:.4f} ms "
                      f"({report.speedup:.2f}x)")

            print("== re-submitting resolves instantly from the result store")
            again = queue.submit("rmsnorm")
            report = again.result(timeout=300)
            print(f"   {again.job_id} from_store={again.from_store} "
                  f"best={report.best_time_ms:.4f} ms")

            stats = queue.stats
            print(f"== queue stats: {stats['done']} done, {stats['cancelled']} cancelled, "
                  f"{stats['stolen']} stolen, {stats['store_hits']} store hits")
            queue.close()
            tailer.join(timeout=5)


if __name__ == "__main__":
    main()
