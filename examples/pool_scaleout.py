#!/usr/bin/env python
"""Scale-out: shard a batch of workloads across a multi-backend SessionPool.

A :class:`SessionPool` owns one worker :class:`Session` per configured GPU
backend (duplicates fan out over the same GPU type), shards ``optimize_many``
workloads across them through a pluggable scheduler, and shares one
measurement-memo table so a schedule measured by one worker is a hit for its
siblings.  Each worker caches deploy artifacts in a per-backend namespace, so
``pool.deploy(kernel, backend=...)`` always finds the right cubin.

Run with:  python examples/pool_scaleout.py
"""

import tempfile

from repro.api import MeasurementPolicy, OptimizationConfig, PoolConfig
from repro.pool import SessionPool
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    config = OptimizationConfig(
        strategy="greedy",  # deterministic and quick for a demo; "ppo" works too
        scale="test",
        search_budget=32,
        episode_length=8,
        autotune=False,
        verify=False,
    )
    # Enumerate from the kernel registry: the gemm family plus the
    # timing-bench set (bmm carries both tags, so it appears twice —
    # duplicate jobs exercise the shared measurement memo).
    from repro.triton.spec import available_kernels

    workloads = [
        *available_kernels(tags=("gemm",)),
        *available_kernels(tags=("timing-bench",)),
    ]

    with tempfile.TemporaryDirectory() as cache_dir:
        with SessionPool(
            # Two A100 instances plus one A30: duplicates share measurements
            # through the pool memo, the A30 gets its own cache namespace.
            ["A100-sim", "A100-sim", "A30-sim"],
            pool=PoolConfig(scheduler="least_loaded"),
            cache_dir=cache_dir,
            config=config,
            # "process" sidesteps the GIL for the timing loop on multi-core hosts.
            measurement=MeasurementPolicy(backend="threaded", max_workers=2),
        ) as pool:
            result = pool.optimize_many(workloads)

            print(f"\n{len(result)} jobs on {len(pool)} workers "
                  f"({result.evaluations} evaluations, "
                  f"{result.evaluations_per_sec:.1f} evals/s):")
            for report, worker in zip(result, result.assignments):
                print(f"  {report.kernel:<12s} on {worker:<20s} "
                      f"{report.baseline_time_ms * 1e3:8.2f} us -> "
                      f"{report.best_time_ms * 1e3:8.2f} us  ({report.speedup:.3f}x)")

            memo = result.memo
            print(f"\nshared memo: {memo['hits']} hits "
                  f"({memo['cross_worker_hits']} cross-worker) over {memo['lookups']} lookups")
            for worker in result.workers:
                print(f"  {worker.worker:<20s} {worker.jobs} jobs, "
                      f"{worker.evaluations} evaluations, {worker.elapsed_s:.2f}s busy")

            # Deploy-time lookup routes to the matching worker's cache namespace.
            deployed = pool.deploy("mmLeakyReLu", backend="A100-sim")
            print(f"\ndeployed mmLeakyReLu from the A100 namespace: "
                  f"{len(deployed.kernel.instructions)} SASS instructions")


if __name__ == "__main__":
    main()
