#!/usr/bin/env python
"""Quickstart: optimize one kernel's SASS schedule through the ``repro.api`` facade.

A :class:`Session` owns the simulated A100, the deploy cache and the
measurement policy.  ``session.optimize`` runs the paper's full pipeline —
compile the fused GEMM + LeakyReLU workload to its ``-O3`` schedule, play the
assembly game with a PPO agent, probabilistically verify the best schedule —
and returns a structured ``RunReport``.

Run with:  python examples/quickstart.py
"""

from repro.api import CacheConfig, OptimizationConfig, Session
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    session = Session(
        gpu="A100-sim",
        cache=CacheConfig(enabled=False),  # this demo never deploys
        config=OptimizationConfig(
            strategy="ppo",
            scale="test",
            episode_length=16,
            train_timesteps=160,
            autotune=False,
            trace=True,  # replay one deterministic episode to reveal the moves
        ),
    )

    # 1. Compile the workload to its -O3 SASS schedule (Triton + ptxas stage).
    compiled = session.compile("mmLeakyReLu")
    print(f"compiled mmLeakyReLu: {len(compiled.kernel.instructions)} SASS instructions, "
          f"{compiled.kernel.metadata.num_registers} registers, "
          f"{compiled.kernel.metadata.shared_memory_bytes} B shared memory")

    # 2. One call runs RL training, verification and the deploy-cache store.
    report = session.optimize_compiled(compiled)
    print(f"baseline (Triton -O3): {report.baseline_time_ms * 1e3:.2f} us")
    print(f"CuAsmRL best schedule: {report.best_time_ms * 1e3:.2f} us")
    print(f"speedup: {report.speedup:.3f}x  (verified: {report.verified})")

    # 3. The optimization moves the trained agent applies (§5.7).
    print("\ndiscovered optimization moves:")
    for move in report.details["moves"][:8]:
        moved = move.moved_instruction.split(";")[0].strip()
        other = move.swapped_with.split(";")[0].strip()
        print(f"  [{move.direction:>4s}] reward {move.reward:+6.3f}  {moved}   <->   {other}")


if __name__ == "__main__":
    main()
