#!/usr/bin/env python
"""Quickstart: optimize one kernel's SASS schedule with CuAsmRL.

Compiles the fused GEMM + LeakyReLU workload with the mini-Triton pipeline,
plays the assembly game with a PPO agent for a small budget, verifies the
best schedule with probabilistic testing and prints the speedup plus the
moves the agent discovered.

Run with:  python examples/quickstart.py
"""

from repro.core import CuAsmRLTrainer
from repro.rl import PPOConfig
from repro.sim import GPUSimulator
from repro.triton import compile_spec, get_spec
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    simulator = GPUSimulator()

    # 1. Compile the workload to its -O3 SASS schedule (Triton + ptxas stage).
    spec = get_spec("mmLeakyReLu")
    compiled = compile_spec(spec, scale="test")
    print(f"compiled {spec.name}: {len(compiled.kernel.instructions)} SASS instructions, "
          f"{compiled.kernel.metadata.num_registers} registers, "
          f"{compiled.kernel.metadata.shared_memory_bytes} B shared memory")

    # 2. Train the RL agent to play the assembly game.
    trainer = CuAsmRLTrainer(
        compiled,
        simulator,
        ppo_config=PPOConfig(num_steps=16, seed=0),
        episode_length=16,
    )
    result = trainer.train(total_timesteps=160, verify=True)
    print(f"baseline (Triton -O3): {result.baseline_time_ms * 1e3:.2f} us")
    print(f"CuAsmRL best schedule: {result.best_time_ms * 1e3:.2f} us")
    print(f"speedup: {result.speedup:.3f}x  (verified: {result.verification.passed})")

    # 3. Trace the optimization moves the trained agent applies (§5.7).
    print("\ndiscovered optimization moves:")
    for move in trainer.trace_inference(seed=0)[:8]:
        moved = move.moved_instruction.split(";")[0].strip()
        other = move.swapped_with.split(";")[0].strip()
        print(f"  [{move.direction:>4s}] reward {move.reward:+6.3f}  {moved}   <->   {other}")


if __name__ == "__main__":
    main()
