#!/usr/bin/env python
"""Optimize the full LLM kernel suite (the paper's Table 2 / Figure 6 workloads).

For every evaluated kernel this example runs the hierarchical search of §3.1:
grid-search autotuning of the kernel configuration followed by RL
optimization of the SASS schedule, then prints a Figure-6-style table of
normalized throughput against the Triton (-O3) baseline.

Run with:  python examples/llm_kernel_suite.py
"""

from statistics import geometric_mean

from repro.bench.experiments import EVALUATED_KERNELS
from repro.core import CuAsmRLOptimizer
from repro.rl import PPOConfig
from repro.sim import GPUSimulator
from repro.triton import get_spec
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    simulator = GPUSimulator()
    optimizer = CuAsmRLOptimizer(
        simulator,
        ppo_config=PPOConfig(num_steps=16, seed=0),
        episode_length=16,
        train_timesteps=96,
    )

    rows = []
    for name in EVALUATED_KERNELS:
        spec = get_spec(name)
        optimized = optimizer.optimize(spec, scale="test", verify=True)
        result = optimized.result
        rows.append((name, result.baseline_time_ms, result.best_time_ms, result.speedup))
        print(f"{name:16s}  Triton {result.baseline_time_ms*1e3:9.2f} us   "
              f"CuAsmRL {result.best_time_ms*1e3:9.2f} us   speedup {result.speedup:.3f}x")

    geomean = geometric_mean([speedup for *_, speedup in rows])
    best = max(speedup for *_, speedup in rows)
    print(f"\ngeometric-mean speedup over Triton: {geomean:.3f}x (paper: 1.09x)")
    print(f"largest per-kernel speedup:        {best:.3f}x (paper: up to 1.26x)")


if __name__ == "__main__":
    main()
