#!/usr/bin/env python
"""Optimize the full LLM kernel suite (the registry's ``llm``-tagged workloads).

``session.optimize_many`` fans the hierarchical search of §3.1 out over every
``llm``-tagged kernel in the registry — the paper's Table 2 / Figure 6
workloads plus the extended suite (fused layernorm, MoE dispatch scan) —
grid-search autotuning of the kernel configuration followed by RL
optimization of the SASS schedule, returning one structured ``RunReport``
per workload, printed as a Figure-6-style table of normalized throughput
against the Triton (-O3) baseline.

Run with:  python examples/llm_kernel_suite.py
"""

from statistics import geometric_mean

from repro.api import CacheConfig, OptimizationConfig, Session
from repro.triton.spec import available_kernels
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    session = Session(
        gpu="A100-sim",
        cache=CacheConfig(enabled=False),
        config=OptimizationConfig(
            strategy="ppo",
            scale="test",
            episode_length=16,
            train_timesteps=96,
        ),
    )

    # Enumerate the suite from the kernel registry: every ``llm``-tagged
    # workload, which grows automatically as kernels are registered.
    workloads = available_kernels(tags=("llm",))
    reports = session.optimize_many(workloads, jobs=2)
    succeeded = []
    for report in reports:
        if report.failed:
            print(f"{report.kernel:16s}  FAILED: {report.error}")
            continue
        succeeded.append(report)
        print(f"{report.kernel:16s}  Triton {report.baseline_time_ms*1e3:9.2f} us   "
              f"CuAsmRL {report.best_time_ms*1e3:9.2f} us   speedup {report.speedup:.3f}x")
    if not succeeded:
        raise SystemExit("every workload failed")

    geomean = geometric_mean([report.speedup for report in succeeded])
    best = max(report.speedup for report in succeeded)
    print(f"\ngeometric-mean speedup over Triton: {geomean:.3f}x (paper: 1.09x)")
    print(f"largest per-kernel speedup:        {best:.3f}x (paper: up to 1.26x)")


if __name__ == "__main__":
    main()
