#!/usr/bin/env python
"""Inspect the compilation pipeline: tile IR, PTX-like listing and the -O3 SASS.

Reproduces the §5.6 comparison (Listing 8 vs Listing 9): the cp.async the
kernel author can see at the PTX level versus the LDGSTS instructions that
``ptxas`` interleaves with IMAD address arithmetic in the SASS schedule —
the level CuAsmRL optimizes.

Run with:  python examples/inspect_sass_pipeline.py
"""

from repro.analysis import run_pre_game_analysis
from repro.api import CacheConfig, OptimizationConfig, Session
from repro.triton import render_ptx


def main() -> None:
    session = Session(
        cache=CacheConfig(enabled=False),
        config=OptimizationConfig(scale="test", autotune=False),
    )
    compiled = session.compile("mmLeakyReLu")

    print("=" * 70)
    print("Tile IR (what the kernel author writes against)")
    print("=" * 70)
    print("\n".join(compiled.program.render().splitlines()[:25]))

    print("\n" + "=" * 70)
    print("PTX-like listing (Listing 8 level: cp.async visible, no schedule)")
    print("=" * 70)
    ptx = render_ptx(compiled.program).splitlines()
    async_lines = [line for line in ptx if "cp.async" in line][:5]
    print("\n".join(ptx[:12] + ["    ..."] + async_lines))

    print("\n" + "=" * 70)
    print("-O3 SASS schedule (Listing 9 level: LDGSTS + control codes)")
    print("=" * 70)
    sass = compiled.kernel.render().splitlines()
    interesting = [line for line in sass if any(op in line for op in ("LDGSTS", "IMAD", "HMMA", "BAR"))]
    print("\n".join(interesting[:20]))

    print("\n" + "=" * 70)
    print("Pre-game static analysis summary (§3.2)")
    print("=" * 70)
    analysis = run_pre_game_analysis(compiled.kernel)
    for key, value in analysis.summary().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
